//! The recycler session: per-session run-time support (paper Algorithm 1)
//! as an interpreter hook over the [`SharedRecycler`] service.
//!
//! The paper's recycler is a *server-wide* facility: one pool shared by
//! every user session (§8 relies on cross-session reuse). Accordingly the
//! run-time support is split in two:
//!
//! * [`SharedRecycler`] (see [`crate::shared`]) — the sharded pool, the
//!   credit/ADAPT accounts, eviction state and lifetime statistics, behind
//!   interior locking; one instance per server.
//! * [`Recycler`] (this module) — a cheap per-session handle implementing
//!   [`rmal::ExecHook`]: the current invocation, the entries this session
//!   has pinned, and the per-query record log. Cloning a `Recycler`
//!   attaches a *new* session to the same shared service.
//!
//! The exact-match hit path — the hot path of every marked instruction —
//! runs entirely under one shard **read** lock: probe, reuse counters,
//! pinning and result cloning are a single [`RecyclePool::probe`] call
//! over per-entry atomics. Admissions pin their parents (shard read
//! locks, one at a time), then insert under the signature shard's write
//! lock; see the locking invariants in [`crate::shared`].
//!
//! `Recycler::new` remains the one-line way to get a single-session
//! engine: it creates a private `SharedRecycler` under the hood.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rbat::catalog::CommitReport;
use rbat::hash::FxHashSet;
use rbat::{Catalog, Value};
use rmal::{ExecHook, HookAction, Instr, Opcode, Program};

use crate::config::{RecyclerConfig, UpdateMode};
use crate::entry::{Artifact, EntryId, InstrKey, PoolEntry};
use crate::pool::Admitted;
use crate::shared::{PoolRef, SharedRecycler};
use crate::signature::{ArgSig, ArtifactKind, Sig};
use crate::stats::{PoolSnapshot, QueryRecord, RecyclerStats};
use crate::subsume::{self, Subsumption};
use crate::tier::{CompressedBat, SpillTicket, TierState};

#[cfg(doc)]
use crate::pool::RecyclePool;

/// What one exact-match probe observed (computed under the shard read
/// lock, consumed after it is released).
struct HitOutcome {
    id: EntryId,
    payload: HitPayload,
    saved: Duration,
    creator: InstrKey,
    local: bool,
    cross_session: bool,
    return_credit: bool,
    /// Did this probe take the pin (vs. the session already holding one)?
    /// Needed to release it when a demoted payload fails to rehydrate.
    newly_pinned: bool,
}

/// The hit's payload as found under the shard read lock: raw entries
/// clone their `result` Arc; demoted entries hand out the tier payload
/// (blob Arc or spill ticket) for rehydration *outside* the lock.
enum HitPayload {
    Raw(Value),
    Compressed(Arc<CompressedBat>),
    Spilled(SpillTicket),
}

/// Most recent per-query records a session retains (the log is trimmed
/// to stay within `[QUERY_LOG_CAP, 2*QUERY_LOG_CAP)` — a server session
/// lives as long as its connection and must not grow without bound).
pub const QUERY_LOG_CAP: usize = 4096;

/// A recycler session: implements `recycleEntry`/`recycleExit` around every
/// marked instruction against the shared pool, and keeps this session's
/// query records (capped at [`QUERY_LOG_CAP`] recent entries). Create
/// with [`Recycler::new`] (private pool) or [`SharedRecycler::session`]
/// (shared pool); clone to attach further sessions to the same pool.
pub struct Recycler {
    shared: Arc<SharedRecycler>,
    session_id: u64,
    /// Invocation id of the currently running query (globally unique —
    /// distinguishes local from global reuse).
    invocation: u64,
    current_template: u64,
    /// Entries this session's current query has touched. Each id here
    /// holds one reference in the entry's atomic pin count; released at
    /// `query_end`.
    pinned: FxHashSet<EntryId>,
    query_log: Vec<QueryRecord>,
    current: QueryRecord,
    /// Soft deadline for the currently running query (set by the facade's
    /// `query_with_deadline`). Past it the hook sheds optional work:
    /// admissions (and therefore any inline eviction they could trigger)
    /// and subsumption searches are skipped — hits still serve, results
    /// stay correct, the query just stops paying cache-maintenance costs
    /// it can no longer amortise.
    deadline: Option<Instant>,
}

impl Recycler {
    /// Create a recycler with its own private [`SharedRecycler`] — the
    /// single-session configuration every example and test started from.
    pub fn new(config: RecyclerConfig) -> Recycler {
        SharedRecycler::new(config).session()
    }

    /// Attach a session to a shared service (use
    /// [`SharedRecycler::session`]).
    pub(crate) fn attach(shared: Arc<SharedRecycler>) -> Recycler {
        let session_id = shared.next_session_id();
        shared.open_session();
        Recycler {
            shared,
            session_id,
            invocation: 0,
            current_template: 0,
            pinned: FxHashSet::default(),
            query_log: Vec::new(),
            current: QueryRecord::default(),
            deadline: None,
        }
    }

    /// The shared service this session is attached to.
    pub fn shared(&self) -> &Arc<SharedRecycler> {
        &self.shared
    }

    /// This session's id (1-based, unique per shared service).
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Live configuration (admission/eviction/limits/update mode).
    pub fn config(&self) -> RecyclerConfig {
        self.shared.config()
    }

    /// Read access to the shared pool (diagnostics, tests, experiment
    /// harness). The pool locks internally per call — holding this
    /// reference blocks nobody.
    pub fn pool(&self) -> PoolRef<'_> {
        self.shared.pool()
    }

    /// Snapshot of the shared lifetime statistics.
    pub fn stats(&self) -> RecyclerStats {
        self.shared.stats()
    }

    /// Per-query records of *this session*, appended at every `query_end`.
    pub fn query_log(&self) -> &[QueryRecord] {
        &self.query_log
    }

    /// Snapshot of the pool content (Table III material).
    pub fn snapshot(&self) -> PoolSnapshot {
        self.shared.snapshot()
    }

    /// Set (or clear) the soft deadline enforced at the recycler's
    /// admission and eviction-wait points for queries run through this
    /// session. Past the deadline, admissions are shed *before* the
    /// capacity reservation — the one place a query can block behind
    /// inline eviction — and subsumption searches are skipped; exact
    /// hits still serve (they are the cheap path). The engine's operator
    /// execution itself is not interrupted: the facade checks the clock
    /// again after the run and reports a deadline error without caching
    /// costs having been paid.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Has the current query's soft deadline passed?
    pub fn past_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    // ----- internal helpers -------------------------------------------------
    //
    // NOTE: the old `clear_pool`/`reset` session methods are gone — their
    // `&mut self` receivers suggested a session-local effect while they
    // wiped the *shared* pool under every other session's feet. Server-wide
    // maintenance now goes through `SharedRecycler::maintenance()` (the
    // facade's `Database::maintenance()`), which serialises on the pool's
    // update mutex and is documented as affecting all sessions.

    /// Bytes a result is charged for: only what the instruction newly
    /// materialised. Binds reference persistent storage, zero-cost
    /// viewpoint instructions share their operand's buffers (paper §2.3,
    /// Table III shows bind/markT at 0 MB).
    fn charge_bytes(op: Opcode, result: &Value) -> usize {
        match op {
            Opcode::Bind | Opcode::BindIdx => 64,
            op if op.zero_cost() => 64,
            _ => result
                .as_bat()
                .map(|b| b.resident_bytes())
                .unwrap_or(std::mem::size_of::<Value>()),
        }
    }

    /// The exact-match probe: one shard read lock, atomics only. On a hit
    /// the reuse counters, last-use stamp, credit flag and pin are all
    /// settled inside the lock; only the accounts/stats bookkeeping
    /// happens after it is released (lock order: shard → accounts).
    fn try_exact_hit(&mut self, sig: &Sig) -> Option<Value> {
        let outcome = {
            let pinned = &self.pinned;
            let shared = &self.shared;
            let invocation = self.invocation;
            let session_id = self.session_id;
            shared.pool_inner().probe(sig, |e| {
                let tick = shared.next_tick();
                e.last_used.store(tick, Ordering::Relaxed);
                let local = e.admitted_invocation == invocation;
                if local {
                    e.local_reuses.fetch_add(1, Ordering::Relaxed);
                } else {
                    e.global_reuses.fetch_add(1, Ordering::Relaxed);
                }
                e.time_saved_ns
                    .fetch_add(e.cpu.as_nanos() as u64, Ordering::Relaxed);
                // first *local* reuse returns the admission credit; the
                // CAS makes a racing pair of hits return it exactly once
                let return_credit = local
                    && e.credit_returned
                        .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok();
                let newly_pinned = !pinned.contains(&e.id);
                if newly_pinned {
                    e.pins.fetch_add(1, Ordering::Relaxed);
                }
                let payload = match &e.tier {
                    TierState::Raw => HitPayload::Raw(e.result.clone()),
                    TierState::Compressed(blob) => HitPayload::Compressed(Arc::clone(blob)),
                    TierState::Spilled(t) => HitPayload::Spilled(*t),
                };
                HitOutcome {
                    id: e.id,
                    payload,
                    saved: e.cpu,
                    creator: e.creator,
                    local,
                    cross_session: e.admitted_session != session_id,
                    return_credit,
                    newly_pinned,
                }
            })
        }?;
        let result = match outcome.payload {
            HitPayload::Raw(v) => v,
            payload => match self.rehydrate_hit(outcome.id, payload) {
                Some(v) => v,
                None => {
                    // torn record or injected fault: degrade this probe to
                    // a miss — the instruction recomputes, correctness is
                    // untouched. Release the pin this probe took.
                    if outcome.newly_pinned {
                        self.shared.pool_inner().entry(outcome.id, |e| {
                            e.pins.fetch_sub(1, Ordering::Relaxed);
                        });
                    }
                    return None;
                }
            },
        };
        self.pinned.insert(outcome.id);
        self.shared
            .note_reuse(outcome.creator, outcome.return_credit);
        self.shared
            .count_hit(outcome.local, outcome.cross_session, outcome.saved);
        self.current.hits += 1;
        self.current.saved += outcome.saved;
        if outcome.local {
            self.current.local_hits += 1;
        } else {
            self.current.global_hits += 1;
        }
        Some(result)
    }

    /// Rehydrate a demoted entry's payload on the hit path: decompress the
    /// blob (for spilled entries, first read the record back from the
    /// spill file), then promote the entry to raw so subsequent hits are
    /// cheap again. All of it runs *outside* shard locks —
    /// [`RecyclePool::promote`] revalidates under the shard write lock.
    /// Returns `None` when rehydration fails (torn record, injected
    /// `tier.rehydrate` fault); the caller degrades the probe to a miss.
    fn rehydrate_hit(&self, id: EntryId, payload: HitPayload) -> Option<Value> {
        #[cfg(feature = "failpoints")]
        if crate::fault::fire("tier.rehydrate").is_some() {
            return None;
        }
        let pool = self.shared.pool_inner();
        let (value, raw_bytes, decompress, rehydrate) = match payload {
            HitPayload::Raw(v) => return Some(v),
            HitPayload::Compressed(blob) => {
                let t0 = Instant::now();
                let bat = blob.decompress().ok()?;
                let cost = t0.elapsed();
                let bytes = bat.resident_bytes();
                (Value::Bat(Arc::new(bat)), bytes, cost, Duration::ZERO)
            }
            HitPayload::Spilled(ticket) => {
                let t0 = Instant::now();
                let record = pool.spill()?.read(ticket).ok()?;
                let bat = CompressedBat::from_bytes(record).decompress().ok()?;
                let cost = t0.elapsed();
                let bytes = bat.resident_bytes();
                (Value::Bat(Arc::new(bat)), bytes, Duration::ZERO, cost)
            }
        };
        // A concurrent hit may have promoted first — our value is equally
        // correct either way; only the winner records the promotion.
        if pool.promote(id, value.clone(), raw_bytes) {
            self.shared.count_tier_promotion(decompress, rehydrate);
        }
        Some(value)
    }

    /// Pin `id` for the remainder of this query if it is still resident,
    /// collecting its base-column lineage on the way. The pin is taken
    /// under the owning shard's read lock (invariant 3 in
    /// [`crate::shared`]).
    fn pin_live(&mut self, id: EntryId, base_columns: &mut BTreeSet<(String, String)>) -> bool {
        let pinned = &self.pinned;
        let alive = self
            .shared
            .pool_inner()
            .entry(id, |e| {
                if !pinned.contains(&e.id) {
                    e.pins.fetch_add(1, Ordering::Relaxed);
                }
                base_columns.extend(e.base_columns.iter().cloned());
            })
            .is_some();
        if alive {
            self.pinned.insert(id);
        }
        alive
    }

    /// Drop all of this session's pins (query end / start safety net).
    /// Entries removed by invalidation may already be gone — that is fine.
    fn unpin_all(&mut self) {
        let shared = Arc::clone(&self.shared);
        let pool = shared.pool_inner();
        for id in self.pinned.drain() {
            pool.entry(id, |e| {
                e.pins.fetch_sub(1, Ordering::Relaxed);
            });
        }
    }

    /// Record that `id` served as a subsumption source (read lock only).
    fn register_subsumption_source(&mut self, id: EntryId) {
        let found = {
            let pinned = &self.pinned;
            let shared = &self.shared;
            shared
                .pool_inner()
                .entry(id, |e| {
                    e.last_used.store(shared.next_tick(), Ordering::Relaxed);
                    e.subsumption_uses.fetch_add(1, Ordering::Relaxed);
                    if !pinned.contains(&e.id) {
                        e.pins.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .is_some()
        };
        if found {
            self.pinned.insert(id);
        }
    }

    /// The artifact-match probe: like [`Self::try_exact_hit`] but keyed by
    /// an artifact signature and returning the typed operator state (plus
    /// its stored build cost) instead of a result value. Artifacts are
    /// evict-only raw entries, so there is no rehydration path: the probe
    /// is one shard read lock, atomics only.
    fn try_artifact_hit(&mut self, sig: &Sig) -> Option<(Artifact, Duration)> {
        struct ArtifactHit {
            id: EntryId,
            artifact: Option<Artifact>,
            saved: Duration,
            creator: InstrKey,
            return_credit: bool,
        }
        let outcome = {
            let pinned = &self.pinned;
            let shared = &self.shared;
            let invocation = self.invocation;
            shared.pool_inner().probe(sig, |e| {
                e.last_used.store(shared.next_tick(), Ordering::Relaxed);
                let local = e.admitted_invocation == invocation;
                if local {
                    e.local_reuses.fetch_add(1, Ordering::Relaxed);
                } else {
                    e.global_reuses.fetch_add(1, Ordering::Relaxed);
                }
                e.time_saved_ns
                    .fetch_add(e.cpu.as_nanos() as u64, Ordering::Relaxed);
                let return_credit = local
                    && e.credit_returned
                        .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok();
                if !pinned.contains(&e.id) {
                    e.pins.fetch_add(1, Ordering::Relaxed);
                }
                ArtifactHit {
                    id: e.id,
                    artifact: e.artifact.clone(),
                    saved: e.cpu,
                    creator: e.creator,
                    return_credit,
                }
            })
        }?;
        self.pinned.insert(outcome.id);
        let artifact = outcome.artifact?;
        self.shared
            .note_reuse(outcome.creator, outcome.return_credit);
        self.shared.count_artifact_hit(outcome.saved);
        self.current.saved += outcome.saved;
        Some((artifact, outcome.saved))
    }

    /// Admit an operator-state artifact under its build-side signature:
    /// the same admission funnel as [`Self::admit`] — deadline shedding,
    /// build-side lineage pinning, credit grant, per-session slice,
    /// capacity reservation, four-way refund discipline — with the
    /// artifact's heap footprint charged against the cap and the session's
    /// credit slice exactly like result bytes. The entry carries
    /// `result: Value::Nil` and no result id: artifacts never serve result
    /// probes or subsumption and never demote — eviction and invalidation
    /// are their only exits.
    fn admit_artifact(
        &mut self,
        pc: usize,
        sig: Sig,
        build: &Value,
        artifact: Artifact,
        cpu: Duration,
    ) {
        let shared = Arc::clone(&self.shared);
        let pool = shared.pool_inner();
        let key: InstrKey = (self.current_template, pc);
        if self.past_deadline() {
            shared.count_deadline_skip();
            return;
        }
        let Value::Bat(b) = build else { return };
        let min_admit = shared.config().min_admit_bytes;
        if min_admit > 0 && artifact.byte_size() < min_admit {
            shared.count_admission_reject();
            return;
        }
        // Lineage: the artifact depends on exactly its build-side BAT. If
        // that BAT is neither a live pool result (pinnable) nor a
        // registered persistent column, coherence cannot be anchored —
        // skip the admission (a future miss, never a wrong answer).
        let mut base_columns: BTreeSet<(String, String)> = BTreeSet::new();
        let mut parents: Vec<EntryId> = Vec::new();
        if let Some(eid) = pool.entry_of_result(b.id()) {
            if self.pin_live(eid, &mut base_columns) {
                parents.push(eid);
            }
        }
        if parents.is_empty() {
            let known = shared.persistent().with(&b.id(), |cols| match cols {
                Some(cols) => {
                    base_columns.extend(cols.iter().cloned());
                    true
                }
                None => false,
            });
            if !known {
                shared.count_admission_reject();
                return;
            }
        }
        let grant = shared.admission_grant(key);
        if !grant.allowed {
            shared.count_admission_reject();
            return;
        }
        if !shared.session_admission_allowed(self.session_id) {
            shared.count_session_budget_reject();
            shared.count_admission_reject();
            shared.undo_admission_charge(key, grant);
            return;
        }
        let bytes = artifact.byte_size();
        if !shared.reserve_admission(bytes) {
            shared.count_admission_reject();
            shared.undo_admission_charge(key, grant);
            return;
        }
        struct Reservation<'a> {
            shared: &'a SharedRecycler,
            bytes: usize,
        }
        impl Drop for Reservation<'_> {
            fn drop(&mut self) {
                self.shared.release_reservation(self.bytes);
            }
        }
        let reservation = Reservation {
            shared: &shared,
            bytes,
        };
        let tick = shared.next_tick();
        let family = artifact.family();
        let entry = PoolEntry {
            id: pool.alloc_id(),
            sig,
            args: vec![build.clone()],
            result: Value::Nil,
            result_id: None,
            artifact: Some(artifact),
            tier: crate::tier::TierState::Raw,
            bytes,
            cpu,
            family,
            parents,
            base_columns,
            admitted_tick: tick,
            admitted_invocation: self.invocation,
            admitted_session: self.session_id,
            creator: key,
            last_used: AtomicU64::new(tick),
            local_reuses: AtomicU64::new(0),
            global_reuses: AtomicU64::new(0),
            subsumption_uses: AtomicU64::new(0),
            time_saved_ns: AtomicU64::new(0),
            // born pinned by the admitting session
            pins: AtomicU32::new(1),
            credit_returned: AtomicBool::new(false),
        };
        let admitted = pool.insert(entry, None);
        drop(reservation);
        match admitted {
            Admitted::Inserted(id) => {
                self.pinned.insert(id);
                shared.count_artifact_admission();
                self.current.admitted += 1;
                self.current.bytes_admitted += bytes as u64;
            }
            Admitted::Duplicate(existing) => {
                // First writer wins, as for results; with no result BAT to
                // alias the resolution is just the pin the pool took for us.
                shared.count_duplicate_admission();
                shared.undo_admission_charge(key, grant);
                if !self.pinned.insert(existing) {
                    pool.entry(existing, |e| {
                        e.pins.fetch_sub(1, Ordering::Relaxed);
                    });
                }
            }
            Admitted::Orphaned | Admitted::Quarantined => {
                shared.count_admission_reject();
                shared.undo_admission_charge(key, grant);
            }
        }
    }

    /// Operator-state recycling (`recycle_operator_state`): execute a
    /// join/group/sort/topN *here*, reusing the pooled build side (hash
    /// table, group map, sorted run) when one matches — even though the
    /// final result differs from anything cached. On a build-side miss the
    /// freshly built structure is admitted under its artifact signature
    /// before the probe half runs; the final result is admitted under the
    /// ORIGINAL signature exactly as `recycleExit` would, so the next
    /// identical call is a plain exact hit.
    ///
    /// Returns the result value plus the wall time actually spent building
    /// and probing (so the caller can keep it out of the overhead gauge).
    /// Any build or probe error returns `None`: the interpreter proceeds
    /// down its normal execution path and surfaces the identical error.
    fn try_operator_state(
        &mut self,
        catalog: &Catalog,
        pc: usize,
        instr: &Instr,
        args: &[Value],
    ) -> Option<(Value, Duration)> {
        // `cold_cpu` is what a cold recompute would pay (on a hit the
        // artifact's stored build cost stands in for the build half);
        // `spent` is the wall time this call actually paid.
        let (result, cold_cpu, spent) = match instr.op {
            Opcode::Join => {
                let l = args.first()?.as_bat()?;
                let r = args.get(1)?.as_bat()?;
                let asig = Sig::artifact(
                    ArtifactKind::JoinBuild,
                    Opcode::Join,
                    vec![ArgSig::Bat(r.id())],
                );
                let (build, build_cost, built) = match self.try_artifact_hit(&asig) {
                    Some((Artifact::JoinBuild(b), saved)) => (b, saved, Duration::ZERO),
                    Some(_) => return None,
                    None => {
                        let t = Instant::now();
                        let b = Arc::new(rbat::ops::join_build(r).ok()?);
                        let cpu = t.elapsed();
                        self.admit_artifact(
                            pc,
                            asig,
                            args.get(1)?,
                            Artifact::JoinBuild(Arc::clone(&b)),
                            cpu,
                        );
                        (b, cpu, cpu)
                    }
                };
                let t = Instant::now();
                let bat = rbat::ops::join_probe(l, r, &build).ok()?;
                let probe = t.elapsed();
                (Value::Bat(Arc::new(bat)), build_cost + probe, built + probe)
            }
            Opcode::Group => {
                let b = args.first()?.as_bat()?;
                let asig = Sig::artifact(
                    ArtifactKind::GroupMap,
                    Opcode::Group,
                    vec![ArgSig::Bat(b.id())],
                );
                let (map, build_cost, built) = match self.try_artifact_hit(&asig) {
                    Some((Artifact::GroupMap(m), saved)) => (m, saved, Duration::ZERO),
                    Some(_) => return None,
                    None => {
                        let t = Instant::now();
                        let m = Arc::new(rbat::ops::group_build(b).ok()?);
                        let cpu = t.elapsed();
                        self.admit_artifact(
                            pc,
                            asig,
                            args.first()?,
                            Artifact::GroupMap(Arc::clone(&m)),
                            cpu,
                        );
                        (m, cpu, cpu)
                    }
                };
                let t = Instant::now();
                let bat = rbat::ops::group_probe(b, &map).ok()?;
                let probe = t.elapsed();
                (Value::Bat(Arc::new(bat)), build_cost + probe, built + probe)
            }
            Opcode::Sort | Opcode::TopN => {
                // Sort and topN share the sorted-run artifact: both file
                // under `Opcode::Sort` with the direction as the trailing
                // scalar, so a topN can reuse a sort's run and vice versa.
                let b = args.first()?.as_bat()?;
                let (n, asc) = if instr.op == Opcode::TopN {
                    (
                        Some(args.get(1)?.as_int()?.max(0) as usize),
                        args.get(2)?.as_bool()?,
                    )
                } else {
                    (None, args.get(1)?.as_bool()?)
                };
                let asig = Sig::artifact(
                    ArtifactKind::SortedRun,
                    Opcode::Sort,
                    vec![ArgSig::Bat(b.id()), ArgSig::Scalar(Value::Bool(asc))],
                );
                let (run, build_cost, built) = match self.try_artifact_hit(&asig) {
                    Some((Artifact::SortedRun(r), saved)) => (r, saved, Duration::ZERO),
                    Some(_) => return None,
                    None => {
                        let t = Instant::now();
                        let r = Arc::new(rbat::ops::sort_build(b, asc).ok()?);
                        let cpu = t.elapsed();
                        self.admit_artifact(
                            pc,
                            asig,
                            args.first()?,
                            Artifact::SortedRun(Arc::clone(&r)),
                            cpu,
                        );
                        (r, cpu, cpu)
                    }
                };
                let t = Instant::now();
                let sorted = rbat::ops::sort_probe(b, &run).ok()?;
                let bat = match n {
                    Some(n) => sorted.slice(0, n.min(sorted.len())),
                    None => sorted,
                };
                let probe = t.elapsed();
                (Value::Bat(Arc::new(bat)), build_cost + probe, built + probe)
            }
            _ => return None,
        };
        // recycleExit for the assisted result, under the ORIGINAL
        // signature; its cpu is the cold recompute cost (build + probe),
        // so future exact hits account the full time they save.
        self.admit(catalog, pc, instr, args, &result, cold_cpu);
        Some((result, spent))
    }

    /// Admit an executed instruction's result (the body of `recycleExit`).
    fn admit(
        &mut self,
        catalog: &Catalog,
        pc: usize,
        instr: &Instr,
        args: &[Value],
        result: &Value,
        cpu: Duration,
    ) {
        let shared = Arc::clone(&self.shared);
        let pool = shared.pool_inner();
        let key: InstrKey = (self.current_template, pc);
        // Deadline shedding: past the soft deadline this query must not
        // pay for cache maintenance — in particular it must not enter
        // `reserve_admission`, whose cap gate is the one place an
        // admission can block behind inline eviction. Skipping the whole
        // exit (including a bind's persistent registration) only costs
        // admissibility of downstream results, i.e. misses.
        if self.past_deadline() {
            shared.count_deadline_skip();
            return;
        }
        // register persistent identities first: they anchor coherence
        let is_bind = matches!(instr.op, Opcode::Bind | Opcode::BindIdx);
        // Floor gate (`RecyclerConfig::min_admit_bytes`): results smaller
        // than the floor are monitored but never admitted — on workloads
        // dominated by tiny intermediates the probe/bookkeeping overhead
        // exceeds what reusing them could save. Checked before any
        // parent pinning so a shed admission costs two comparisons. Bind
        // and zero-cost viewpoint stubs are exempt: they are 64-byte
        // lineage anchors whose absence would break whole-thread
        // coherence for every result downstream of them.
        let min_admit = shared.config().min_admit_bytes;
        if min_admit > 0
            && !is_bind
            && !instr.op.zero_cost()
            && Self::charge_bytes(instr.op, result) < min_admit
        {
            shared.count_admission_reject();
            return;
        }
        let mut base_columns: BTreeSet<(String, String)> = if is_bind {
            let cols = shared.base_columns_of(catalog, instr, args);
            if let Value::Bat(b) = result {
                shared.persistent().insert(b.id(), cols.clone());
            }
            cols
        } else {
            BTreeSet::new()
        };
        // Bottom-up matching coherence (paper §4.1: keep whole threads
        // intact): every BAT argument must be reachable as a pool result
        // or a persistent BAT. Pool-resident parents are *pinned* here, so
        // eviction cannot take the prefix out from under this admission;
        // `insert` revalidates them once more inside its critical section
        // (a concurrent update may still invalidate — invariant 6).
        let mut parents: Vec<EntryId> = Vec::new();
        for a in args {
            if let Value::Bat(b) = a {
                if let Some(eid) = pool.entry_of_result(b.id()) {
                    if self.pin_live(eid, &mut base_columns) {
                        parents.push(eid);
                        continue;
                    }
                }
                let known = shared.persistent().with(&b.id(), |cols| match cols {
                    Some(cols) => {
                        base_columns.extend(cols.iter().cloned());
                        true
                    }
                    None => false,
                });
                if !known {
                    shared.count_admission_reject();
                    return;
                }
            }
        }
        let grant = shared.admission_grant(key);
        if !grant.allowed {
            shared.count_admission_reject();
            return;
        }
        // Per-session credit slice (ROADMAP "Admission under contention"):
        // a session past its fair share of the global budget — with the
        // overflow lane closed — is turned away before any room-making
        // work, so one flooding session cannot starve the others'
        // admissions. The footprint charge itself is implicit: the pool's
        // per-session resident books move at the insert/remove funnels.
        if !shared.session_admission_allowed(self.session_id) {
            shared.count_session_budget_reject();
            shared.count_admission_reject();
            shared.undo_admission_charge(key, grant);
            return;
        }
        let bytes = Self::charge_bytes(instr.op, result);
        // reserve capacity (strict limits under concurrency); released
        // when the insert settles, whatever its outcome — via an RAII
        // guard, so a panic unwinding out of `insert` (which poisons and
        // quarantines the shard) cannot leak the pending reservation and
        // choke future admissions against the cap
        if !shared.reserve_admission(bytes) {
            shared.count_admission_reject();
            shared.undo_admission_charge(key, grant);
            return;
        }
        struct Reservation<'a> {
            shared: &'a SharedRecycler,
            bytes: usize,
        }
        impl Drop for Reservation<'_> {
            fn drop(&mut self) {
                self.shared.release_reservation(self.bytes);
            }
        }
        let reservation = Reservation {
            shared: &shared,
            bytes,
        };
        let sig = Sig::versioned(catalog, instr.op, args);
        let tick = shared.next_tick();
        let result_id = result.as_bat().map(|b| b.id());
        // subset semantics for the subsumption machinery (§5.1), recorded
        // atomically with the insert
        let subset_of = match (result_id, args.first()) {
            (Some(_), Some(Value::Bat(arg0)))
                if matches!(
                    instr.op,
                    Opcode::Select
                        | Opcode::Uselect
                        | Opcode::Like
                        | Opcode::SelectNotNil
                        | Opcode::Semijoin
                        | Opcode::Diff
                        | Opcode::Kunique
                        | Opcode::Sort
                        | Opcode::TopN
                ) =>
            {
                Some(arg0.id())
            }
            _ => None,
        };
        let entry = PoolEntry {
            id: pool.alloc_id(),
            sig,
            args: args.to_vec(),
            result: result.clone(),
            result_id,
            artifact: None,
            tier: crate::tier::TierState::Raw,
            bytes,
            cpu,
            family: instr.op.family(),
            parents,
            base_columns,
            admitted_tick: tick,
            admitted_invocation: self.invocation,
            admitted_session: self.session_id,
            creator: key,
            last_used: AtomicU64::new(tick),
            local_reuses: AtomicU64::new(0),
            global_reuses: AtomicU64::new(0),
            subsumption_uses: AtomicU64::new(0),
            time_saved_ns: AtomicU64::new(0),
            // born pinned by the admitting session
            pins: AtomicU32::new(1),
            credit_returned: AtomicBool::new(false),
        };
        let admitted = pool.insert(entry, subset_of);
        drop(reservation);
        match admitted {
            Admitted::Inserted(id) => {
                self.pinned.insert(id);
                shared.count_admission();
                self.current.admitted += 1;
                self.current.bytes_admitted += bytes as u64;
            }
            Admitted::Duplicate(existing) => {
                // Concurrent-admission resolution (first writer wins): the
                // pool kept the resident instance, pinned it on our behalf
                // and aliased our result BAT onto it — all inside the
                // shard critical section. Return the credit and reconcile
                // the pin with this session's pin set (we may have pinned
                // the winner already earlier in the query).
                shared.count_duplicate_admission();
                shared.undo_admission_charge(key, grant);
                if !self.pinned.insert(existing) {
                    pool.entry(existing, |e| {
                        e.pins.fetch_sub(1, Ordering::Relaxed);
                    });
                }
            }
            Admitted::Orphaned => {
                // An update invalidated a parent between resolution and
                // insertion — the thread is broken, admitting would leave
                // dangling lineage. The candidate never entered the pool,
                // so no bytes were counted; the admission credit (when one
                // was charged) goes back to the account so repeated
                // orphaning cannot drain it.
                shared.count_admission_reject();
                shared.undo_admission_charge(key, grant);
            }
            Admitted::Quarantined => {
                // The target shard is quarantined after a poisoning
                // panic: the pool refused the candidate without touching
                // torn state. Same refund discipline as a reject —
                // degraded mode costs this session a miss, nothing more.
                shared.count_admission_reject();
                shared.undo_admission_charge(key, grant);
            }
        }
    }

    /// Invalidate every intermediate whose lineage intersects the affected
    /// columns (paper §6.4: immediate column-wise invalidation), under a
    /// *scoped* write view: roots are gathered under shard read locks,
    /// then write locks are taken on only the shards holding the lineage
    /// closure — sessions working against other tables keep probing and
    /// admitting throughout. Removal overrides pins — correctness beats
    /// retention; stale pins are cleaned up by their sessions'
    /// `query_end`. An entry admitted from a pre-commit snapshot after
    /// the gather is harmless: its bind thread carries the pre-commit
    /// version signature, which no post-commit probe can match.
    fn invalidate_columns(&mut self, affected: &BTreeSet<(String, String)>) {
        let shared = Arc::clone(&self.shared);
        let pool = shared.pool_inner();
        let mut roots: Vec<EntryId> = Vec::new();
        pool.for_each_entry(|e| {
            if e.base_columns.intersection(affected).next().is_some() {
                roots.push(e.id);
            }
        });
        let removed = if roots.is_empty() {
            0
        } else {
            let shards = pool.closure_shards(&roots);
            let mut view = pool.scoped_view(&shards);
            let mut removed = 0u64;
            for r in roots {
                removed += view.remove_subtree(r).len() as u64;
            }
            removed
        };
        shared.count_invalidated(removed);
        // drop stale persistent registrations
        shared
            .persistent()
            .retain(|_, cols| cols.intersection(affected).next().is_none());
    }
}

impl Clone for Recycler {
    /// Cloning attaches a **new session** to the same shared service:
    /// fresh session id, empty query log, no pins. This is what makes the
    /// hook handle cloneable for multi-session engines
    /// ([`rmal::Engine::session`]).
    fn clone(&self) -> Recycler {
        self.shared.session()
    }
}

impl Drop for Recycler {
    /// Closing a session deregisters it from the shared service's active
    /// set, rebalancing every remaining session's credit slice (the slice
    /// divisor is the live active count). Entries this session admitted
    /// stay resident and keep holding budget until eviction or
    /// invalidation removes them.
    fn drop(&mut self) {
        self.shared.close_session();
    }
}

impl std::fmt::Debug for Recycler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recycler")
            .field("session_id", &self.session_id)
            .field("invocation", &self.invocation)
            .field("pinned", &self.pinned.len())
            .finish()
    }
}

impl ExecHook for Recycler {
    fn query_start(&mut self, program: &Program) {
        self.invocation = self.shared.next_invocation();
        self.current_template = program.id;
        self.shared.note_invocation(program.id);
        if !self.pinned.is_empty() {
            // safety net: a previous query aborted without `query_end`
            self.unpin_all();
        }
        self.current = QueryRecord {
            template: program.id,
            name: program.name.clone(),
            ..Default::default()
        };
    }

    fn before(
        &mut self,
        catalog: &Catalog,
        pc: usize,
        instr: &Instr,
        args: &[Value],
    ) -> HookAction {
        let t0 = Instant::now();
        self.shared.count_monitored();
        self.current.monitored += 1;
        // Bind-family signatures carry the table's commit version, so a
        // probe can never exact-match an entry admitted against another
        // commit epoch (see `Sig::versioned`).
        let sig = Sig::versioned(catalog, instr.op, args);
        let config = self.shared.config();

        // Phase 1: exact match (paper §3.3) — one shard read lock, no
        // write lock ever (invariant 2 in `crate::shared`).
        if let Some(result) = self.try_exact_hit(&sig) {
            self.shared.add_overhead(t0.elapsed());
            return HookAction::Reuse(result);
        }

        // Phase 2: subsumption (paper §5). The candidate search fans out
        // across the shards under read locks; argument values are cloned
        // out, so a concurrent eviction of the source cannot invalidate
        // the rewrite (`Arc`-shared BATs).
        // Past the soft deadline the subsumption fan-out (a cross-shard
        // candidate search plus piecing) is optional work the query can
        // no longer amortise; exact hits above still served.
        if config.subsumption && !self.past_deadline() {
            let attempt = {
                let pool = self.shared.pool_inner();
                match instr.op {
                    Opcode::Select => subsume::subsume_select(pool, args),
                    Opcode::Uselect => subsume::subsume_uselect(pool, args),
                    Opcode::Like => subsume::subsume_like(pool, args),
                    Opcode::Semijoin => subsume::subsume_semijoin(pool, args),
                    _ => None,
                }
            };
            if let Some(Subsumption::Rewrite {
                args: new_args,
                source,
            }) = attempt
            {
                self.register_subsumption_source(source);
                self.shared.count_subsumed();
                self.current.subsumed += 1;
                self.shared.add_overhead(t0.elapsed());
                return HookAction::Rewrite(new_args);
            }
            if config.combined_subsumption && instr.op == Opcode::Select {
                let pieced = {
                    let pool = self.shared.pool_inner();
                    match subsume::subsume_combined(pool, args, config.combined_max_candidates) {
                        Some(Subsumption::Combined {
                            segments,
                            search_time,
                        }) => {
                            self.shared.add_subsume_search(search_time);
                            let exec0 = Instant::now();
                            subsume::execute_combined(pool, &segments)
                                .map(|bat| (segments, bat, exec0.elapsed()))
                        }
                        _ => None,
                    }
                };
                if let Some((segments, bat, cpu)) = pieced {
                    let result = Value::Bat(Arc::new(bat));
                    for (id, _) in &segments {
                        self.register_subsumption_source(*id);
                    }
                    self.shared.count_subsumed();
                    self.current.subsumed += 1;
                    // recycleExit for the pieced result, under the
                    // ORIGINAL signature.
                    self.admit(catalog, pc, instr, args, &result, cpu);
                    self.shared.add_overhead(t0.elapsed());
                    return HookAction::Computed(result);
                }
            }
        }
        // Phase 3: operator-state recycling — the instruction's *build
        // side* (join hash table, group map, sorted run) may be pooled
        // even though no cached final result matches. Probe under the
        // build-side artifact signature; on a hit skip the build, on a
        // miss build-and-admit, then finish with the probe half and hand
        // the computed result back as `Assisted`. The executed work is
        // subtracted from the overhead gauge — it is query execution,
        // not cache maintenance.
        if config.recycle_operator_state
            && !self.past_deadline()
            && matches!(
                instr.op,
                Opcode::Join | Opcode::Group | Opcode::Sort | Opcode::TopN
            )
        {
            if let Some((result, spent)) = self.try_operator_state(catalog, pc, instr, args) {
                self.shared.add_overhead(t0.elapsed().saturating_sub(spent));
                return HookAction::Assisted(result);
            }
        }
        self.shared.add_overhead(t0.elapsed());
        HookAction::Proceed
    }

    fn after(
        &mut self,
        catalog: &Catalog,
        pc: usize,
        instr: &Instr,
        args: &[Value],
        result: &Value,
        cpu: Duration,
        _subsumed: bool,
    ) {
        let t0 = Instant::now();
        self.admit(catalog, pc, instr, args, result, cpu);
        self.shared.add_overhead(t0.elapsed());
    }

    fn query_end(&mut self, _program: &Program) {
        if !self.pinned.is_empty() {
            self.unpin_all();
        }
        let record = std::mem::take(&mut self.current);
        // A session can live as long as a server connection, so the log
        // is bounded: beyond 2×cap the older half is dropped (amortised
        // O(1)), keeping at least QUERY_LOG_CAP recent records — more
        // than any experiment batch reads back.
        if self.query_log.len() >= 2 * QUERY_LOG_CAP {
            self.query_log.drain(..QUERY_LOG_CAP);
        }
        self.query_log.push(record);
    }

    fn update_event(&mut self, report: &CommitReport, catalog: &Catalog) {
        // DDL-free engine: every commit is DML on one table.
        if report.inserted.is_empty() && report.deleted.is_empty() {
            return;
        }
        // Update synchronisation is *scoped*: the commit's root entries
        // (binds of the touched table/indices) are located under read
        // locks, and invalidation/propagation then write-locks only the
        // shards holding their lineage closure. Queries against other
        // tables never block (per-instruction atomicity for affected ones
        // — a query already past an instruction keeps its pre-update
        // intermediate, as in the paper's transaction-isolation
        // discussion §6.1).
        let shared = Arc::clone(&self.shared);
        if shared.config().update_mode == UpdateMode::Propagate && report.deleted.is_empty() {
            let outcome = {
                let pool = shared.pool_inner();
                let roots = crate::propagate::propagation_roots(pool, report);
                let shards = pool.closure_shards(&roots);
                let mut view = pool.scoped_view(&shards);
                crate::propagate::propagate_commit(&mut view, report, catalog)
            };
            if let Some(outcome) = outcome {
                shared.count_propagated(outcome.refreshed);
                shared.count_invalidated(outcome.invalidated);
                for (bat, cols) in outcome.new_persistent {
                    shared.persistent().insert(bat, cols);
                }
                return;
            }
        }
        // Immediate column-level invalidation (§6.4): inserts and deletes
        // affect every column of the table (the row set changed); rebuilt
        // indices affect their endpoints.
        let mut affected: BTreeSet<(String, String)> = BTreeSet::new();
        if let Ok(table) = catalog.table(&report.table) {
            for (c, _) in table.schema() {
                affected.insert((report.table.clone(), c.clone()));
            }
        }
        for idx in &report.rebuilt_indices {
            if let Some(def) = catalog.index_def(idx) {
                affected.insert((def.from_table.clone(), def.from_column.clone()));
                affected.insert((def.to_table.clone(), def.to_key.clone()));
            }
        }
        self.invalidate_columns(&affected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdmissionPolicy;
    use rbat::{LogicalType, TableBuilder};
    use rmal::{Engine, ProgramBuilder, P};

    fn catalog(n: i64) -> Catalog {
        let mut cat = Catalog::new();
        let mut tb = TableBuilder::new("t")
            .column("x", LogicalType::Int)
            .column("y", LogicalType::Int);
        for i in 0..n {
            tb.push_row(&[Value::Int((i * 37) % n), Value::Int(i)]);
        }
        cat.add_table(tb.finish());
        cat
    }

    fn engine(config: RecyclerConfig) -> Engine<Recycler> {
        let mut e = Engine::with_hook(catalog(1000), Recycler::new(config));
        e.add_pass(Box::new(crate::mark::RecycleMark));
        e
    }

    fn range_template() -> rmal::Program {
        let mut b = ProgramBuilder::new("range_count", 2);
        let col = b.bind("t", "x");
        let sel = b.select_closed(col, P(0), P(1));
        let n = b.count(sel);
        b.export("n", n);
        b.finish()
    }

    #[test]
    fn second_invocation_hits() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        let p = [Value::Int(100), Value::Int(600)];
        let first = e.run(&t, &p).unwrap();
        assert_eq!(first.stats.reused, 0);
        let second = e.run(&t, &p).unwrap();
        assert_eq!(second.stats.reused, second.stats.marked);
        assert_eq!(first.export("n"), second.export("n"));
        assert_eq!(e.hook.stats().global_hits, second.stats.reused as u64);
        e.hook.pool().check_invariants().unwrap();
    }

    #[test]
    fn exact_hits_take_no_write_lock() {
        // The tentpole invariant: once the pool is warm, a 100%-hit query
        // acquires shard READ locks only — the write-acquisition counter
        // must not move.
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        let p = [Value::Int(100), Value::Int(600)];
        e.run(&t, &p).unwrap(); // warm: admissions take write locks
        let w0 = e.hook.pool().write_lock_acquisitions();
        for _ in 0..5 {
            let out = e.run(&t, &p).unwrap();
            assert_eq!(out.stats.reused, out.stats.marked, "all marked must hit");
        }
        let w1 = e.hook.pool().write_lock_acquisitions();
        assert_eq!(w0, w1, "exact-match hits must not take any write lock");
        assert!(e.hook.stats().hits > 0);
    }

    #[test]
    fn different_params_subsume() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        let wide = e.run(&t, &[Value::Int(0), Value::Int(900)]).unwrap();
        let narrow = e.run(&t, &[Value::Int(100), Value::Int(500)]).unwrap();
        // bind hits; select runs in subsumed form
        assert!(narrow.stats.reused >= 1);
        assert_eq!(narrow.stats.subsumed, 1);
        // correctness: count equals a fresh engine's answer
        let mut naive = Engine::new(catalog(1000));
        let mut t2 = range_template();
        naive.optimize(&mut t2);
        let expect = naive.run(&t2, &[Value::Int(100), Value::Int(500)]).unwrap();
        assert_eq!(narrow.export("n"), expect.export("n"));
        let _ = wide;
    }

    #[test]
    fn subsumption_can_be_disabled() {
        let mut e = engine(RecyclerConfig::default().subsumption(false));
        let mut t = range_template();
        e.optimize(&mut t);
        e.run(&t, &[Value::Int(0), Value::Int(900)]).unwrap();
        let narrow = e.run(&t, &[Value::Int(100), Value::Int(500)]).unwrap();
        assert_eq!(narrow.stats.subsumed, 0);
    }

    #[test]
    fn entry_limit_caps_pool() {
        let cfg = RecyclerConfig::default().entry_limit(2);
        let mut e = engine(cfg);
        let mut t = range_template();
        e.optimize(&mut t);
        for i in 0..5 {
            e.run(&t, &[Value::Int(i * 10), Value::Int(i * 10 + 100)])
                .unwrap();
        }
        assert!(e.hook.pool().len() <= 2);
        assert!(e.hook.stats().evictions > 0);
        e.hook.pool().check_invariants().unwrap();
    }

    #[test]
    fn mem_limit_respected() {
        let cfg = RecyclerConfig::default().mem_limit(16 * 1024);
        let mut e = engine(cfg);
        let mut t = range_template();
        e.optimize(&mut t);
        for i in 0..6 {
            e.run(&t, &[Value::Int(i * 7), Value::Int(i * 7 + 400)])
                .unwrap();
        }
        assert!(e.hook.pool().bytes() <= 16 * 1024);
        e.hook.pool().check_invariants().unwrap();
    }

    #[test]
    fn credit_policy_stops_admitting() {
        let cfg = RecyclerConfig::default()
            .admission(AdmissionPolicy::Credit(2))
            .subsumption(false);
        let mut e = engine(cfg);
        let mut t = range_template();
        e.optimize(&mut t);
        // disjoint ranges: no reuse, credits drain after 2 admissions
        for i in 0..5 {
            e.run(&t, &[Value::Int(i * 100), Value::Int(i * 100 + 50)])
                .unwrap();
        }
        // bind is admitted once then always hit; the select+count threads
        // spend their credits after 2 instances each
        let selects = e
            .hook
            .pool()
            .snapshot_entries()
            .iter()
            .filter(|en| en.family == "select")
            .count();
        assert_eq!(selects, 2, "credit(2) must cap select instances");
        assert!(e.hook.stats().admission_rejects > 0);
    }

    #[test]
    fn min_admit_bytes_skips_tiny_results_without_changing_hit_semantics() {
        // Two engines, same workload: the knob must only remove the
        // sub-threshold admissions (the scalar `count` result), not
        // change what the surviving entries answer.
        let mut plain = engine(RecyclerConfig::default());
        let mut gated = engine(RecyclerConfig::default().min_admit_bytes(1024));
        let mut t = range_template();
        plain.optimize(&mut t);
        let p = [Value::Int(100), Value::Int(600)];
        let (a1, a2) = (plain.run(&t, &p).unwrap(), plain.run(&t, &p).unwrap());
        let (b1, b2) = (gated.run(&t, &p).unwrap(), gated.run(&t, &p).unwrap());

        // identical answers, and the big entries (bind, select) still hit
        assert_eq!(a1.export("n"), b1.export("n"));
        assert_eq!(a2.export("n"), b2.export("n"));
        assert_eq!(
            a2.stats.reused, a2.stats.marked,
            "baseline: everything hits"
        );
        assert_eq!(
            b2.stats.reused,
            b2.stats.marked - 1,
            "gated: only the sub-threshold count recomputes"
        );

        // the gate monitors the tiny result but never admits it
        assert_eq!(plain.hook.stats().monitored, gated.hook.stats().monitored);
        assert!(gated.hook.stats().admission_rejects > 0);
        let families = |e: &Engine<Recycler>| {
            e.hook
                .pool()
                .snapshot_entries()
                .iter()
                .map(|en| en.family)
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert!(families(&plain).contains("aggr"));
        assert!(!families(&gated).contains("aggr"));
        assert!(families(&gated).contains("select"));
        assert!(
            gated.hook.pool().len() < plain.hook.pool().len(),
            "the knob must remove entries, i.e. overhead"
        );
        gated.hook.pool().check_invariants().unwrap();
    }

    #[test]
    fn orphaned_admissions_never_drain_credits_or_bytes() {
        // Regression: an admission whose parents were invalidated
        // mid-flight resolves as `Admitted::Orphaned`. The sequence the
        // hook performs — charge the credit, reserve, insert, refund on
        // orphan — must leave the credit account and the byte counters
        // exactly where they started, every time: repeated orphaning used
        // to be able to drain an instruction's credits for good.
        use crate::signature::Sig;
        use std::collections::BTreeSet;
        use std::time::Duration;

        let shared =
            SharedRecycler::new(RecyclerConfig::default().admission(AdmissionPolicy::Credit(2)));
        let pool = shared.pool_inner();
        let key: InstrKey = (7, 3);
        let bytes_before = pool.bytes();
        for round in 0..16u64 {
            let grant = shared.admission_grant(key);
            assert!(grant.allowed, "credits drained after {round} orphanings");
            assert!(grant.charged);
            assert!(shared.reserve_admission(100));
            let entry = PoolEntry {
                id: pool.alloc_id(),
                sig: Sig::of(Opcode::Select, &[Value::Int(round as i64)]),
                args: vec![Value::Int(round as i64)],
                result: Value::Int(round as i64),
                result_id: None,
                artifact: None,
                tier: crate::tier::TierState::Raw,
                bytes: 100,
                cpu: Duration::from_micros(1),
                family: "select",
                // a parent that an update invalidated between resolution
                // and insertion
                parents: vec![999_999],
                base_columns: BTreeSet::new(),
                admitted_tick: 0,
                admitted_invocation: 0,
                admitted_session: 0,
                creator: key,
                last_used: AtomicU64::new(0),
                local_reuses: AtomicU64::new(0),
                global_reuses: AtomicU64::new(0),
                subsumption_uses: AtomicU64::new(0),
                time_saved_ns: AtomicU64::new(0),
                pins: AtomicU32::new(1),
                credit_returned: AtomicBool::new(false),
            };
            assert_eq!(pool.insert(entry, None), Admitted::Orphaned);
            shared.release_reservation(100);
            shared.count_admission_reject();
            shared.undo_admission_charge(key, grant);
            // no byte may ever be double-counted for a dropped candidate
            assert_eq!(pool.bytes(), bytes_before, "round {round}");
        }
        assert!(pool.is_empty());
        // the account still holds its full balance: two *kept* admissions
        // in a row are granted without an intervening refund
        assert!(shared.admission_grant(key).allowed);
        assert!(shared.admission_grant(key).allowed);
    }

    #[test]
    fn uncharged_grants_refund_nothing() {
        // ADAPT promotes a reused instruction to unlimited admissions,
        // which are *not* charged. A duplicate/orphan resolution of such
        // an admission must not mint credits out of thin air: the refund
        // must be exactly what the grant charged.
        let shared =
            SharedRecycler::new(RecyclerConfig::default().admission(AdmissionPolicy::Adaptive(1)));
        let key: InstrKey = (1, 0);
        // burn the starting credit, record a reuse, pass the decision point
        shared.note_invocation(1);
        assert!(shared.admission_grant(key).charged);
        shared.note_reuse(key, false);
        shared.note_invocation(1);
        shared.note_invocation(1);
        let grant = shared.admission_grant(key);
        assert!(grant.allowed && !grant.charged, "unlimited keys are free");
        // an orphaned outcome of an uncharged grant refunds nothing; with
        // the charged-amount discipline this is a no-op by construction
        shared.undo_admission_charge(key, grant);
        let again = shared.admission_grant(key);
        assert!(again.allowed && !again.charged);
    }

    #[test]
    fn invalidation_on_update() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        let p = [Value::Int(0), Value::Int(500)];
        e.run(&t, &p).unwrap();
        assert!(!e.hook.pool().is_empty());
        e.update("t", vec![vec![Value::Int(1), Value::Int(1)]], vec![])
            .unwrap();
        assert_eq!(
            e.hook.pool().len(),
            0,
            "all intermediates derive from t and must be invalidated"
        );
        // next run recomputes and matches fresh binds
        let out = e.run(&t, &p).unwrap();
        assert_eq!(out.stats.reused, 0);
        let out2 = e.run(&t, &p).unwrap();
        assert!(out2.stats.reused > 0);
    }

    #[test]
    fn untouched_tables_survive_update() {
        let mut cat = catalog(100);
        let mut tb = TableBuilder::new("other").column("z", LogicalType::Int);
        tb.push_row(&[Value::Int(1)]);
        cat.add_table(tb.finish());
        let mut e = Engine::with_hook(cat, Recycler::new(RecyclerConfig::default()));
        e.add_pass(Box::new(crate::mark::RecycleMark));
        let mut t = range_template();
        e.optimize(&mut t);
        e.run(&t, &[Value::Int(0), Value::Int(50)]).unwrap();
        let before = e.hook.pool().len();
        e.update("other", vec![vec![Value::Int(2)]], vec![])
            .unwrap();
        assert_eq!(e.hook.pool().len(), before, "t-derived entries survive");
    }

    #[test]
    fn pool_listing_renders_table1_view() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        e.run(&t, &[Value::Int(5), Value::Int(300)]).unwrap();
        let listing = e.hook.pool().listing();
        assert!(listing.contains("sql.bind"), "{listing}");
        assert!(listing.contains("algebra.select"));
        assert!(listing.contains("bat#"));
        assert!(listing.lines().count() >= 4);
    }

    #[test]
    fn query_log_records() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        let p = [Value::Int(1), Value::Int(2)];
        e.run(&t, &p).unwrap();
        e.run(&t, &p).unwrap();
        let log = e.hook.query_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].hits, 0);
        assert!(log[1].hits > 0);
        assert!(log[1].hit_ratio() > 0.9);
    }

    // ----- shared-service behaviour ----------------------------------------

    #[test]
    fn sessions_share_one_pool_and_hit_cross_session() {
        let shared = SharedRecycler::new(RecyclerConfig::default());
        let cat = catalog(1000);
        let mut a = Engine::with_hook(cat.clone(), shared.session());
        a.add_pass(Box::new(crate::mark::RecycleMark));
        let mut b = Engine::with_hook(cat, shared.session());
        b.add_pass(Box::new(crate::mark::RecycleMark));

        let mut t = range_template();
        a.optimize(&mut t);

        let p = [Value::Int(100), Value::Int(600)];
        let first = a.run(&t, &p).unwrap();
        assert_eq!(first.stats.reused, 0);
        // session B reuses session A's intermediates wholesale
        let second = b.run(&t, &p).unwrap();
        assert_eq!(second.stats.reused, second.stats.marked);
        assert_eq!(first.export("n"), second.export("n"));

        let stats = shared.stats();
        assert!(stats.cross_session_hits > 0, "{stats:?}");
        assert_eq!(stats.cross_session_hits, stats.hits);
        assert_eq!(stats.sessions, 2);
        shared.pool().check_invariants().unwrap();
    }

    #[test]
    fn clone_attaches_a_new_session() {
        let r = Recycler::new(RecyclerConfig::default());
        let r2 = r.clone();
        assert_ne!(r.session_id(), r2.session_id());
        assert!(Arc::ptr_eq(r.shared(), r2.shared()));
    }

    #[test]
    fn concurrent_duplicate_admission_first_writer_wins() {
        // Interleave two sessions at the hook level: both probe (miss),
        // both execute, both admit the same bind signature. The pool must
        // keep a single instance and charge the loser nothing.
        let shared = SharedRecycler::new(RecyclerConfig::default());
        let cat = catalog(100);
        let mut s1 = shared.session();
        let mut s2 = shared.session();

        use rmal::optimizer::OptPass as _;
        let mut prog = range_template();
        crate::mark::RecycleMark.run(&mut prog, &cat);
        let bind = prog.instrs[0].clone();
        assert_eq!(bind.op, Opcode::Bind);
        let args = vec![Value::str("t"), Value::str("x")];

        s1.query_start(&prog);
        s2.query_start(&prog);
        // both probe and miss
        assert!(matches!(
            s1.before(&cat, 0, &bind, &args),
            HookAction::Proceed
        ));
        assert!(matches!(
            s2.before(&cat, 0, &bind, &args),
            HookAction::Proceed
        ));
        // both execute and admit
        let r1 = rmal::execute_op(&cat, &bind.op, &args).unwrap();
        let r2 = rmal::execute_op(&cat, &bind.op, &args).unwrap();
        s1.after(&cat, 0, &bind, &args, &r1, Duration::from_micros(5), false);
        s2.after(&cat, 0, &bind, &args, &r2, Duration::from_micros(5), false);
        s1.query_end(&prog);
        s2.query_end(&prog);

        let stats = shared.stats();
        assert_eq!(stats.admissions, 1, "single resident instance");
        assert_eq!(stats.duplicate_admissions, 1, "loser resolved explicitly");
        assert_eq!(shared.pool().len(), 1);
        shared.pool().check_invariants().unwrap();
    }

    #[test]
    fn duplicate_loser_chain_stays_admissible() {
        // Race the SELECT (whose executed results carry distinct BatIds,
        // unlike binds, which the catalog caches): the losing session's
        // result is aliased onto the resident entry, so its downstream
        // count still passes admission coherence instead of being
        // silently rejected.
        let shared = SharedRecycler::new(RecyclerConfig::default());
        let cat = catalog(1000);
        let mut s1 = shared.session();
        let mut s2 = shared.session();

        use rmal::optimizer::OptPass as _;
        let mut prog = range_template();
        crate::mark::RecycleMark.run(&mut prog, &cat);
        let bind = prog.instrs[0].clone();
        let select = prog.instrs[1].clone();
        let count = prog.instrs[2].clone();
        let bind_args = vec![Value::str("t"), Value::str("x")];

        s1.query_start(&prog);
        s2.query_start(&prog);
        // s1 admits the bind; s2 hits it — both sessions now hold the
        // same column BAT, so their select signatures agree.
        assert!(matches!(
            s1.before(&cat, 0, &bind, &bind_args),
            HookAction::Proceed
        ));
        let col = rmal::execute_op(&cat, &bind.op, &bind_args).unwrap();
        s1.after(
            &cat,
            0,
            &bind,
            &bind_args,
            &col,
            Duration::from_micros(5),
            false,
        );
        let col2 = match s2.before(&cat, 0, &bind, &bind_args) {
            HookAction::Reuse(v) => v,
            other => panic!("bind must hit, got {other:?}"),
        };
        // both probe the select before either admits it (the race window)
        let sel_args = |c: &Value| {
            vec![
                c.clone(),
                Value::Int(100),
                Value::Int(600),
                Value::Bool(true),
                Value::Bool(true),
            ]
        };
        let a1 = sel_args(&col);
        let a2 = sel_args(&col2);
        assert!(matches!(
            s1.before(&cat, 1, &select, &a1),
            HookAction::Proceed
        ));
        assert!(matches!(
            s2.before(&cat, 1, &select, &a2),
            HookAction::Proceed
        ));
        let sel1 = rmal::execute_op(&cat, &select.op, &a1).unwrap();
        let sel2 = rmal::execute_op(&cat, &select.op, &a2).unwrap();
        assert_ne!(
            sel1.as_bat().unwrap().id(),
            sel2.as_bat().unwrap().id(),
            "distinct materialisations"
        );
        s1.after(
            &cat,
            1,
            &select,
            &a1,
            &sel1,
            Duration::from_micros(5),
            false,
        );
        s2.after(
            &cat,
            1,
            &select,
            &a2,
            &sel2,
            Duration::from_micros(5),
            false,
        );
        assert_eq!(shared.stats().duplicate_admissions, 1);

        // the loser's downstream count references ITS select result
        let cnt_args = vec![sel2.clone()];
        assert!(matches!(
            s2.before(&cat, 2, &count, &cnt_args),
            HookAction::Proceed
        ));
        let n = rmal::execute_op(&cat, &count.op, &cnt_args).unwrap();
        let rejects_before = shared.stats().admission_rejects;
        s2.after(
            &cat,
            2,
            &count,
            &cnt_args,
            &n,
            Duration::from_micros(5),
            false,
        );
        assert_eq!(
            shared.stats().admission_rejects,
            rejects_before,
            "aliased lineage must keep the loser's chain admissible"
        );
        s1.query_end(&prog);
        s2.query_end(&prog);
        shared.pool().check_invariants().unwrap();
    }

    #[test]
    fn eviction_never_frees_entries_pinned_by_another_session() {
        // Session A starts a query and hits an entry (pinning it); session
        // B then floods a tiny pool. A's pinned entry must survive B's
        // evictions.
        let shared = SharedRecycler::new(RecyclerConfig::default().entry_limit(2));
        let cat = catalog(1000);
        let mut a = Engine::with_hook(cat.clone(), shared.session());
        a.add_pass(Box::new(crate::mark::RecycleMark));
        let mut t = range_template();
        a.optimize(&mut t);
        // admit the bind + select + count thread
        a.run(&t, &[Value::Int(1), Value::Int(2)]).unwrap();
        let protected_sig = shared
            .pool()
            .snapshot_entries()
            .into_iter()
            .find(|e| e.family == "bind")
            .unwrap()
            .sig
            .clone();

        // hold a pin from a simulated in-flight query of session A
        let mut holder = shared.session();
        holder.query_start(&t);
        let bind_instr = t.instrs[0].clone();
        let bind_args = vec![Value::str("t"), Value::str("x")];
        let action = holder.before(&cat, 0, &bind_instr, &bind_args);
        assert!(matches!(action, HookAction::Reuse(_)), "bind must hit");

        // session B floods the pool with disjoint selections
        let mut b = Engine::with_hook(cat.clone(), shared.session());
        b.add_pass(Box::new(crate::mark::RecycleMark));
        for i in 0..6 {
            b.run(&t, &[Value::Int(i * 50), Value::Int(i * 50 + 30)])
                .unwrap();
        }
        assert!(shared.stats().evictions > 0, "pressure must evict");
        assert!(
            shared.pool().lookup(&protected_sig).is_some(),
            "the entry pinned by the in-flight session must survive"
        );
        holder.query_end(&t);
        shared.pool().check_invariants().unwrap();
    }

    #[test]
    fn operator_state_reuses_join_build() {
        let config = RecyclerConfig::default().recycle_operator_state(true);
        let mut e = engine(config);
        // join probe side varies with the select range, build side (the
        // bound y column) repeats — classic operator-state reuse.
        let mut t = {
            let mut b = ProgramBuilder::new("join_probe", 2);
            let x = b.bind("t", "x");
            let y = b.bind("t", "y");
            let sel = b.select_closed(x, P(0), P(1));
            let j = b.join(sel, y);
            let n = b.count(j);
            b.export("n", n);
            b.finish()
        };
        e.optimize(&mut t);
        let first = e.run(&t, &[Value::Int(0), Value::Int(400)]).unwrap();
        let stats = e.hook.stats();
        assert!(
            stats.artifact_admissions >= 1,
            "build side must be admitted"
        );
        assert!(stats.artifact_bytes > 0);
        // different params: no exact hit on the join, but the build side
        // (keyed by the bound column's BAT identity) must be reused.
        let second = e.run(&t, &[Value::Int(100), Value::Int(700)]).unwrap();
        let stats = e.hook.stats();
        assert!(stats.artifact_hits >= 1, "build side must be reused");
        assert!(second.stats.assisted >= 1, "join must run assisted");

        // identity: the assisted result equals a cold engine's answer
        let mut cold = engine(RecyclerConfig::default());
        let mut tc = {
            let mut b = ProgramBuilder::new("join_probe", 2);
            let x = b.bind("t", "x");
            let y = b.bind("t", "y");
            let sel = b.select_closed(x, P(0), P(1));
            let j = b.join(sel, y);
            let n = b.count(j);
            b.export("n", n);
            b.finish()
        };
        cold.optimize(&mut tc);
        let base1 = cold.run(&tc, &[Value::Int(0), Value::Int(400)]).unwrap();
        let base2 = cold.run(&tc, &[Value::Int(100), Value::Int(700)]).unwrap();
        assert_eq!(first.export("n"), base1.export("n"));
        assert_eq!(second.export("n"), base2.export("n"));
        e.hook.pool().check_invariants().unwrap();
    }

    #[test]
    fn operator_state_off_by_default() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = {
            let mut b = ProgramBuilder::new("sorted", 1);
            let x = b.bind("t", "x");
            let sel = b.select_closed(x, P(0), Value::Int(500));
            let s = b.sort(sel, true);
            b.export("s", s);
            b.finish()
        };
        e.optimize(&mut t);
        e.run(&t, &[Value::Int(0)]).unwrap();
        e.run(&t, &[Value::Int(10)]).unwrap();
        let stats = e.hook.stats();
        assert_eq!(stats.artifact_admissions, 0);
        assert_eq!(stats.artifact_hits, 0);
        assert_eq!(e.hook.pool().artifact_bytes(), 0);
    }
}
