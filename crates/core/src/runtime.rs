//! The recycler session: per-session run-time support (paper Algorithm 1)
//! as an interpreter hook over the [`SharedRecycler`] service.
//!
//! The paper's recycler is a *server-wide* facility: one pool shared by
//! every user session (§8 relies on cross-session reuse). Accordingly the
//! run-time support is split in two:
//!
//! * [`SharedRecycler`] (see [`crate::shared`]) — the pool, the
//!   credit/ADAPT accounts, eviction state and lifetime statistics, behind
//!   interior locking; one instance per server.
//! * [`Recycler`] (this module) — a cheap per-session handle implementing
//!   [`rmal::ExecHook`]: the current invocation, the entries this session
//!   has pinned, and the per-query record log. Cloning a `Recycler`
//!   attaches a *new* session to the same shared service.
//!
//! `Recycler::new` remains the one-line way to get a single-session
//! engine: it creates a private `SharedRecycler` under the hood.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rbat::catalog::CommitReport;
use rbat::hash::FxHashSet;
use rbat::{Catalog, Value};
use rmal::{ExecHook, HookAction, Instr, Opcode, Program};

use crate::config::{RecyclerConfig, UpdateMode};
use crate::entry::{EntryId, InstrKey, PoolEntry};
use crate::eviction::{evict, EvictTrigger};
use crate::pool::Admitted;
use crate::shared::{PoolRef, PoolState, SharedRecycler};
use crate::signature::Sig;
use crate::stats::{PoolSnapshot, QueryRecord, RecyclerStats};
use crate::subsume::{self, Subsumption};

/// A recycler session: implements `recycleEntry`/`recycleExit` around every
/// marked instruction against the shared pool, and keeps this session's
/// query records. Create with [`Recycler::new`] (private pool) or
/// [`SharedRecycler::session`] (shared pool); clone to attach further
/// sessions to the same pool.
pub struct Recycler {
    shared: Arc<SharedRecycler>,
    session_id: u64,
    /// Invocation id of the currently running query (globally unique —
    /// distinguishes local from global reuse).
    invocation: u64,
    current_template: u64,
    /// Entries this session's current query has touched. Mirrored into the
    /// shared pin table; unpinned at `query_end`.
    pinned: FxHashSet<EntryId>,
    query_log: Vec<QueryRecord>,
    current: QueryRecord,
}

impl Recycler {
    /// Create a recycler with its own private [`SharedRecycler`] — the
    /// single-session configuration every example and test started from.
    pub fn new(config: RecyclerConfig) -> Recycler {
        SharedRecycler::new(config).session()
    }

    /// Attach a session to a shared service (use
    /// [`SharedRecycler::session`]).
    pub(crate) fn attach(shared: Arc<SharedRecycler>) -> Recycler {
        let session_id = shared.next_session_id();
        Recycler {
            shared,
            session_id,
            invocation: 0,
            current_template: 0,
            pinned: FxHashSet::default(),
            query_log: Vec::new(),
            current: QueryRecord::default(),
        }
    }

    /// The shared service this session is attached to.
    pub fn shared(&self) -> &Arc<SharedRecycler> {
        &self.shared
    }

    /// This session's id (1-based, unique per shared service).
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Live configuration (admission/eviction/limits/update mode).
    pub fn config(&self) -> RecyclerConfig {
        self.shared.config()
    }

    /// Read access to the shared pool (diagnostics, tests, experiment
    /// harness). The returned guard blocks writers — hold it briefly.
    pub fn pool(&self) -> PoolRef<'_> {
        self.shared.pool()
    }

    /// Snapshot of the shared lifetime statistics.
    pub fn stats(&self) -> RecyclerStats {
        self.shared.stats()
    }

    /// Per-query records of *this session*, appended at every `query_end`.
    pub fn query_log(&self) -> &[QueryRecord] {
        &self.query_log
    }

    /// Snapshot of the pool content (Table III material).
    pub fn snapshot(&self) -> PoolSnapshot {
        self.shared.snapshot()
    }

    /// Empty the shared recycle pool (the experiments' "emptied recycle
    /// pool" preparation step) without resetting credit accounts.
    pub fn clear_pool(&mut self) {
        self.shared.clear_pool();
        self.pinned.clear();
    }

    /// Reset pool, accounts and statistics of the shared service, plus
    /// this session's log. Other attached sessions keep running — their
    /// pins are gone, which is safe (pins only guard eviction policy).
    pub fn reset(&mut self) {
        self.shared.reset();
        self.pinned.clear();
        self.query_log.clear();
        self.current = QueryRecord::default();
    }

    // ----- internal helpers -------------------------------------------------

    /// Bytes a result is charged for: only what the instruction newly
    /// materialised. Binds reference persistent storage, zero-cost
    /// viewpoint instructions share their operand's buffers (paper §2.3,
    /// Table III shows bind/markT at 0 MB).
    fn charge_bytes(op: Opcode, result: &Value) -> usize {
        match op {
            Opcode::Bind | Opcode::BindIdx => 64,
            op if op.zero_cost() => 64,
            _ => result
                .as_bat()
                .map(|b| b.resident_bytes())
                .unwrap_or(std::mem::size_of::<Value>()),
        }
    }

    /// Pin `id` for the remainder of this query: the shared refcount is
    /// bumped once per session per query.
    fn pin(&mut self, st: &mut PoolState, id: EntryId) {
        if self.pinned.insert(id) {
            *st.pins.entry(id).or_insert(0) += 1;
        }
    }

    /// Drop all of this session's pins (query end / start safety net).
    /// Entries removed by invalidation may already be gone from the pin
    /// table — that is fine.
    fn unpin_all(&mut self, st: &mut PoolState) {
        for id in self.pinned.drain() {
            if let Some(c) = st.pins.get_mut(&id) {
                *c -= 1;
                if *c == 0 {
                    st.pins.remove(&id);
                }
            }
        }
    }

    /// Record a hit on `id`: statistics, protection, credit return.
    /// Caller holds the write lock and has revalidated the entry.
    fn register_hit(&mut self, st: &mut PoolState, id: EntryId) -> Value {
        let tick = st.next_tick();
        let invocation = self.invocation;
        let e = st.pool.get_mut(id).expect("hit entry exists");
        e.last_used = tick;
        let local = e.admitted_invocation == invocation;
        let cross_session = e.admitted_session != self.session_id;
        if local {
            e.local_reuses += 1;
        } else {
            e.global_reuses += 1;
        }
        e.time_saved += e.cpu;
        let saved = e.cpu;
        let creator = e.creator;
        let result = e.result.clone();
        let return_credit_now = local && !e.credit_returned;
        if return_credit_now {
            e.credit_returned = true;
        }
        self.pin(st, id);
        self.shared.note_reuse(creator, return_credit_now);
        self.shared.count_hit(local, cross_session, saved);
        self.current.hits += 1;
        self.current.saved += saved;
        if local {
            self.current.local_hits += 1;
        } else {
            self.current.global_hits += 1;
        }
        result
    }

    /// Record that `id` served as a subsumption source.
    fn register_subsumption_source(&mut self, st: &mut PoolState, id: EntryId) {
        let tick = st.next_tick();
        if let Some(e) = st.pool.get_mut(id) {
            e.last_used = tick;
            e.subsumption_uses += 1;
            self.pin(st, id);
        }
    }

    /// Make room for `need_bytes` / one more entry; returns false when the
    /// pool cannot be shrunk enough. Pinned entries (any session) are
    /// never evicted: when only pinned leaves remain, admission fails
    /// instead — see the locking invariants in [`crate::shared`].
    fn make_room(&mut self, st: &mut PoolState, need_bytes: usize) -> bool {
        let config = self.shared.config();
        if let Some(limit) = config.mem_limit {
            if need_bytes > limit {
                return false;
            }
            if st.pool.bytes() + need_bytes > limit {
                let need = st.pool.bytes() + need_bytes - limit;
                let protected = st.protected();
                let now = st.tick;
                let evicted = evict(
                    &mut st.pool,
                    config.eviction,
                    EvictTrigger::Memory(need),
                    &protected,
                    now,
                );
                self.shared.settle_evictions(&evicted);
                if st.pool.bytes() + need_bytes > limit {
                    return false;
                }
            }
        }
        if let Some(limit) = config.entry_limit {
            if limit == 0 {
                return false;
            }
            if st.pool.len() + 1 > limit {
                let need = st.pool.len() + 1 - limit;
                let protected = st.protected();
                let now = st.tick;
                let evicted = evict(
                    &mut st.pool,
                    config.eviction,
                    EvictTrigger::Entries(need),
                    &protected,
                    now,
                );
                self.shared.settle_evictions(&evicted);
                if st.pool.len() + 1 > limit {
                    return false;
                }
            }
        }
        true
    }

    /// Admit an executed instruction's result (the body of `recycleExit`).
    /// Caller holds the write lock.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &mut self,
        st: &mut PoolState,
        catalog: &Catalog,
        pc: usize,
        instr: &Instr,
        args: &[Value],
        result: &Value,
        cpu: Duration,
    ) {
        let key: InstrKey = (self.current_template, pc);
        // register persistent identities first: they anchor coherence
        if matches!(instr.op, Opcode::Bind | Opcode::BindIdx) {
            if let Value::Bat(b) = result {
                let cols = st.base_columns_of(catalog, instr, args);
                st.persistent.insert(b.id(), cols);
            }
        }
        // Cheap precheck of lineage coherence (repeated authoritatively
        // after eviction below).
        for a in args {
            if let Value::Bat(b) = a {
                if st.pool.entry_of_result(b.id()).is_none() && !st.persistent.contains_key(&b.id())
                {
                    self.shared.count_admission_reject();
                    return;
                }
            }
        }
        if !self.shared.admission_allows(key) {
            self.shared.count_admission_reject();
            return;
        }
        let bytes = Self::charge_bytes(instr.op, result);
        if !self.make_room(st, bytes) {
            self.shared.count_admission_reject();
            self.shared.undo_admission_charge(key);
            return;
        }
        // Bottom-up matching coherence: every BAT argument must itself be
        // reachable for future matching — as a pool result or a persistent
        // BAT (paper §4.1: keep whole threads intact). Resolved *after*
        // make_room: eviction may have taken a prefix, in which case
        // admitting this dependent would be useless.
        let mut parents: Vec<EntryId> = Vec::new();
        for a in args {
            if let Value::Bat(b) = a {
                if let Some(eid) = st.pool.entry_of_result(b.id()) {
                    parents.push(eid);
                } else if !st.persistent.contains_key(&b.id()) {
                    self.shared.count_admission_reject();
                    self.shared.undo_admission_charge(key);
                    return;
                }
            }
        }
        let sig = Sig::of(instr.op, args);
        let base_columns = st.base_columns_of(catalog, instr, args);
        let tick = st.next_tick();
        let entry = PoolEntry {
            id: st.pool.next_id(),
            sig,
            args: args.to_vec(),
            result: result.clone(),
            result_id: result.as_bat().map(|b| b.id()),
            bytes,
            cpu,
            family: instr.op.family(),
            parents,
            base_columns,
            admitted_tick: tick,
            last_used: tick,
            admitted_invocation: self.invocation,
            admitted_session: self.session_id,
            local_reuses: 0,
            global_reuses: 0,
            subsumption_uses: 0,
            creator: key,
            time_saved: Duration::ZERO,
            credit_returned: false,
        };
        let result_id = entry.result_id;
        match st.pool.insert(entry) {
            Admitted::Inserted(id) => {
                self.pin(st, id);
                self.shared.count_admission();
                self.current.admitted += 1;
                self.current.bytes_admitted += bytes as u64;
                // subset semantics for the subsumption machinery (§5.1)
                if let (Some(rid), Some(Value::Bat(arg0))) = (result_id, args.first()) {
                    if matches!(
                        instr.op,
                        Opcode::Select
                            | Opcode::Uselect
                            | Opcode::Like
                            | Opcode::SelectNotNil
                            | Opcode::Semijoin
                            | Opcode::Diff
                            | Opcode::Kunique
                            | Opcode::Sort
                            | Opcode::TopN
                    ) {
                        st.pool.add_subset_edge(rid, arg0.id());
                    }
                }
            }
            Admitted::Duplicate(existing) => {
                // Concurrent-admission resolution (first writer wins): a
                // session that probed, missed, and executed while another
                // session admitted the same signature. Keep the resident
                // instance, drop our copy, return the credit, and pin the
                // winner. Our executed result BAT is equivalent to the
                // winner's but carries a different identity, and the rest
                // of this query references *ours* — alias it onto the
                // resident entry so the downstream chain keeps resolving
                // parents and passing admission coherence.
                self.shared.count_duplicate_admission();
                self.shared.undo_admission_charge(key);
                self.pin(st, existing);
                if let Some(rid) = result_id {
                    st.pool.alias_result(rid, existing);
                }
            }
        }
    }

    /// Invalidate every intermediate whose lineage intersects the affected
    /// columns (paper §6.4: immediate column-wise invalidation). Removal
    /// overrides pins — correctness beats retention; stale pins are
    /// cleaned up by their sessions' `query_end`.
    fn invalidate_columns(&mut self, st: &mut PoolState, affected: &BTreeSet<(String, String)>) {
        let roots: Vec<EntryId> = st
            .pool
            .iter()
            .filter(|e| e.base_columns.intersection(affected).next().is_some())
            .map(|e| e.id)
            .collect();
        let mut removed = 0u64;
        for r in roots {
            removed += st.pool.remove_subtree(r).len() as u64;
        }
        self.shared.count_invalidated(removed);
        // drop stale persistent registrations
        st.persistent
            .retain(|_, cols| cols.intersection(affected).next().is_none());
    }
}

impl Clone for Recycler {
    /// Cloning attaches a **new session** to the same shared service:
    /// fresh session id, empty query log, no pins. This is what makes the
    /// hook handle cloneable for multi-session engines
    /// ([`rmal::Engine::session`]).
    fn clone(&self) -> Recycler {
        self.shared.session()
    }
}

impl std::fmt::Debug for Recycler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recycler")
            .field("session_id", &self.session_id)
            .field("invocation", &self.invocation)
            .field("pinned", &self.pinned.len())
            .finish()
    }
}

impl ExecHook for Recycler {
    fn query_start(&mut self, program: &Program) {
        self.invocation = self.shared.next_invocation();
        self.current_template = program.id;
        self.shared.note_invocation(program.id);
        if !self.pinned.is_empty() {
            // safety net: a previous query aborted without `query_end`
            let shared = Arc::clone(&self.shared);
            let mut st = shared.write_state();
            self.unpin_all(&mut st);
        }
        self.current = QueryRecord {
            template: program.id,
            name: program.name.clone(),
            ..Default::default()
        };
    }

    fn before(
        &mut self,
        catalog: &Catalog,
        pc: usize,
        instr: &Instr,
        args: &[Value],
    ) -> HookAction {
        let t0 = Instant::now();
        self.shared.count_monitored();
        self.current.monitored += 1;
        let sig = Sig::of(instr.op, args);
        let config = self.shared.config();

        // Phase 1: exact match (paper §3.3). Probe under the read lock;
        // a hit re-checks under the write lock (the entry may have been
        // evicted or invalidated between the two — invariant 3).
        let probe_hit = self.shared.read_state().pool.lookup(&sig).is_some();
        if probe_hit {
            let shared = Arc::clone(&self.shared);
            let mut st = shared.write_state();
            if let Some(id) = st.pool.lookup(&sig) {
                let result = self.register_hit(&mut st, id);
                drop(st);
                self.shared.add_overhead(t0.elapsed());
                return HookAction::Reuse(result);
            }
            // lost the race — fall through to subsumption / execution
        }

        // Phase 2: subsumption (paper §5). The search runs under the read
        // lock; argument values are cloned out, so a concurrent eviction
        // of the source cannot invalidate the rewrite (`Arc`-shared BATs).
        if config.subsumption {
            let attempt = {
                let st = self.shared.read_state();
                match instr.op {
                    Opcode::Select => subsume::subsume_select(&st.pool, args),
                    Opcode::Uselect => subsume::subsume_uselect(&st.pool, args),
                    Opcode::Like => subsume::subsume_like(&st.pool, args),
                    Opcode::Semijoin => subsume::subsume_semijoin(&st.pool, args),
                    _ => None,
                }
            };
            if let Some(Subsumption::Rewrite {
                args: new_args,
                source,
            }) = attempt
            {
                {
                    let shared = Arc::clone(&self.shared);
                    let mut st = shared.write_state();
                    self.register_subsumption_source(&mut st, source);
                }
                self.shared.count_subsumed();
                self.current.subsumed += 1;
                self.shared.add_overhead(t0.elapsed());
                return HookAction::Rewrite(new_args);
            }
            if config.combined_subsumption && instr.op == Opcode::Select {
                let pieced = {
                    let st = self.shared.read_state();
                    match subsume::subsume_combined(&st.pool, args, config.combined_max_candidates)
                    {
                        Some(Subsumption::Combined {
                            segments,
                            search_time,
                        }) => {
                            self.shared.add_subsume_search(search_time);
                            let exec0 = Instant::now();
                            subsume::execute_combined(&st.pool, &segments)
                                .map(|bat| (segments, bat, exec0.elapsed()))
                        }
                        _ => None,
                    }
                };
                if let Some((segments, bat, cpu)) = pieced {
                    let result = Value::Bat(Arc::new(bat));
                    let shared = Arc::clone(&self.shared);
                    let mut st = shared.write_state();
                    for (id, _) in &segments {
                        self.register_subsumption_source(&mut st, *id);
                    }
                    self.shared.count_subsumed();
                    self.current.subsumed += 1;
                    // recycleExit for the pieced result, under the
                    // ORIGINAL signature.
                    self.admit(&mut st, catalog, pc, instr, args, &result, cpu);
                    drop(st);
                    self.shared.add_overhead(t0.elapsed());
                    return HookAction::Computed(result);
                }
            }
        }
        self.shared.add_overhead(t0.elapsed());
        HookAction::Proceed
    }

    fn after(
        &mut self,
        catalog: &Catalog,
        pc: usize,
        instr: &Instr,
        args: &[Value],
        result: &Value,
        cpu: Duration,
        _subsumed: bool,
    ) {
        let t0 = Instant::now();
        {
            let shared = Arc::clone(&self.shared);
            let mut st = shared.write_state();
            self.admit(&mut st, catalog, pc, instr, args, result, cpu);
        }
        self.shared.add_overhead(t0.elapsed());
    }

    fn query_end(&mut self, _program: &Program) {
        if !self.pinned.is_empty() {
            let shared = Arc::clone(&self.shared);
            let mut st = shared.write_state();
            self.unpin_all(&mut st);
        }
        let record = std::mem::take(&mut self.current);
        self.query_log.push(record);
    }

    fn update_event(&mut self, report: &CommitReport, catalog: &Catalog) {
        // DDL-free engine: every commit is DML on one table.
        if report.inserted.is_empty() && report.deleted.is_empty() {
            return;
        }
        // The whole synchronisation runs under the write lock: concurrent
        // queries see the pool either entirely before or entirely after
        // the commit (per-instruction atomicity — a query already past an
        // instruction keeps its pre-update intermediate, as in the paper's
        // transaction-isolation discussion §6.1).
        let shared = Arc::clone(&self.shared);
        let mut st = shared.write_state();
        if self.shared.config().update_mode == UpdateMode::Propagate {
            if let Some(outcome) = crate::propagate::propagate_commit(&mut st.pool, report, catalog)
            {
                self.shared.count_propagated(outcome.refreshed);
                self.shared.count_invalidated(outcome.invalidated);
                for (bat, cols) in outcome.new_persistent {
                    st.persistent.insert(bat, cols);
                }
                return;
            }
        }
        // Immediate column-level invalidation (§6.4): inserts and deletes
        // affect every column of the table (the row set changed); rebuilt
        // indices affect their endpoints.
        let mut affected: BTreeSet<(String, String)> = BTreeSet::new();
        if let Ok(table) = catalog.table(&report.table) {
            for (c, _) in table.schema() {
                affected.insert((report.table.clone(), c.clone()));
            }
        }
        for idx in &report.rebuilt_indices {
            if let Some(def) = catalog.index_def(idx) {
                affected.insert((def.from_table.clone(), def.from_column.clone()));
                affected.insert((def.to_table.clone(), def.to_key.clone()));
            }
        }
        self.invalidate_columns(&mut st, &affected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdmissionPolicy;
    use rbat::{LogicalType, TableBuilder};
    use rmal::{Engine, ProgramBuilder, P};

    fn catalog(n: i64) -> Catalog {
        let mut cat = Catalog::new();
        let mut tb = TableBuilder::new("t")
            .column("x", LogicalType::Int)
            .column("y", LogicalType::Int);
        for i in 0..n {
            tb.push_row(&[Value::Int((i * 37) % n), Value::Int(i)]);
        }
        cat.add_table(tb.finish());
        cat
    }

    fn engine(config: RecyclerConfig) -> Engine<Recycler> {
        let mut e = Engine::with_hook(catalog(1000), Recycler::new(config));
        e.add_pass(Box::new(crate::mark::RecycleMark));
        e
    }

    fn range_template() -> rmal::Program {
        let mut b = ProgramBuilder::new("range_count", 2);
        let col = b.bind("t", "x");
        let sel = b.select_closed(col, P(0), P(1));
        let n = b.count(sel);
        b.export("n", n);
        b.finish()
    }

    #[test]
    fn second_invocation_hits() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        let p = [Value::Int(100), Value::Int(600)];
        let first = e.run(&t, &p).unwrap();
        assert_eq!(first.stats.reused, 0);
        let second = e.run(&t, &p).unwrap();
        assert_eq!(second.stats.reused, second.stats.marked);
        assert_eq!(first.export("n"), second.export("n"));
        assert_eq!(e.hook.stats().global_hits, second.stats.reused as u64);
        e.hook.pool().check_invariants().unwrap();
    }

    #[test]
    fn different_params_subsume() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        let wide = e.run(&t, &[Value::Int(0), Value::Int(900)]).unwrap();
        let narrow = e.run(&t, &[Value::Int(100), Value::Int(500)]).unwrap();
        // bind hits; select runs in subsumed form
        assert!(narrow.stats.reused >= 1);
        assert_eq!(narrow.stats.subsumed, 1);
        // correctness: count equals a fresh engine's answer
        let mut naive = Engine::new(catalog(1000));
        let mut t2 = range_template();
        naive.optimize(&mut t2);
        let expect = naive.run(&t2, &[Value::Int(100), Value::Int(500)]).unwrap();
        assert_eq!(narrow.export("n"), expect.export("n"));
        let _ = wide;
    }

    #[test]
    fn subsumption_can_be_disabled() {
        let mut e = engine(RecyclerConfig::default().subsumption(false));
        let mut t = range_template();
        e.optimize(&mut t);
        e.run(&t, &[Value::Int(0), Value::Int(900)]).unwrap();
        let narrow = e.run(&t, &[Value::Int(100), Value::Int(500)]).unwrap();
        assert_eq!(narrow.stats.subsumed, 0);
    }

    #[test]
    fn entry_limit_caps_pool() {
        let cfg = RecyclerConfig::default().entry_limit(2);
        let mut e = engine(cfg);
        let mut t = range_template();
        e.optimize(&mut t);
        for i in 0..5 {
            e.run(&t, &[Value::Int(i * 10), Value::Int(i * 10 + 100)])
                .unwrap();
        }
        assert!(e.hook.pool().len() <= 2);
        assert!(e.hook.stats().evictions > 0);
        e.hook.pool().check_invariants().unwrap();
    }

    #[test]
    fn mem_limit_respected() {
        let cfg = RecyclerConfig::default().mem_limit(16 * 1024);
        let mut e = engine(cfg);
        let mut t = range_template();
        e.optimize(&mut t);
        for i in 0..6 {
            e.run(&t, &[Value::Int(i * 7), Value::Int(i * 7 + 400)])
                .unwrap();
        }
        assert!(e.hook.pool().bytes() <= 16 * 1024);
        e.hook.pool().check_invariants().unwrap();
    }

    #[test]
    fn credit_policy_stops_admitting() {
        let cfg = RecyclerConfig::default()
            .admission(AdmissionPolicy::Credit(2))
            .subsumption(false);
        let mut e = engine(cfg);
        let mut t = range_template();
        e.optimize(&mut t);
        // disjoint ranges: no reuse, credits drain after 2 admissions
        for i in 0..5 {
            e.run(&t, &[Value::Int(i * 100), Value::Int(i * 100 + 50)])
                .unwrap();
        }
        // bind is admitted once then always hit; the select+count threads
        // spend their credits after 2 instances each
        let selects = e
            .hook
            .pool()
            .iter()
            .filter(|en| en.family == "select")
            .count();
        assert_eq!(selects, 2, "credit(2) must cap select instances");
        assert!(e.hook.stats().admission_rejects > 0);
    }

    #[test]
    fn invalidation_on_update() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        let p = [Value::Int(0), Value::Int(500)];
        e.run(&t, &p).unwrap();
        assert!(!e.hook.pool().is_empty());
        e.update("t", vec![vec![Value::Int(1), Value::Int(1)]], vec![])
            .unwrap();
        assert_eq!(
            e.hook.pool().len(),
            0,
            "all intermediates derive from t and must be invalidated"
        );
        // next run recomputes and matches fresh binds
        let out = e.run(&t, &p).unwrap();
        assert_eq!(out.stats.reused, 0);
        let out2 = e.run(&t, &p).unwrap();
        assert!(out2.stats.reused > 0);
    }

    #[test]
    fn untouched_tables_survive_update() {
        let mut cat = catalog(100);
        let mut tb = TableBuilder::new("other").column("z", LogicalType::Int);
        tb.push_row(&[Value::Int(1)]);
        cat.add_table(tb.finish());
        let mut e = Engine::with_hook(cat, Recycler::new(RecyclerConfig::default()));
        e.add_pass(Box::new(crate::mark::RecycleMark));
        let mut t = range_template();
        e.optimize(&mut t);
        e.run(&t, &[Value::Int(0), Value::Int(50)]).unwrap();
        let before = e.hook.pool().len();
        e.update("other", vec![vec![Value::Int(2)]], vec![])
            .unwrap();
        assert_eq!(e.hook.pool().len(), before, "t-derived entries survive");
    }

    #[test]
    fn pool_listing_renders_table1_view() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        e.run(&t, &[Value::Int(5), Value::Int(300)]).unwrap();
        let listing = e.hook.pool().listing();
        assert!(listing.contains("sql.bind"), "{listing}");
        assert!(listing.contains("algebra.select"));
        assert!(listing.contains("bat#"));
        assert!(listing.lines().count() >= 4);
    }

    #[test]
    fn query_log_records() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        let p = [Value::Int(1), Value::Int(2)];
        e.run(&t, &p).unwrap();
        e.run(&t, &p).unwrap();
        let log = e.hook.query_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].hits, 0);
        assert!(log[1].hits > 0);
        assert!(log[1].hit_ratio() > 0.9);
    }

    // ----- shared-service behaviour ----------------------------------------

    #[test]
    fn sessions_share_one_pool_and_hit_cross_session() {
        let shared = SharedRecycler::new(RecyclerConfig::default());
        let cat = catalog(1000);
        let mut a = Engine::with_hook(cat.clone(), shared.session());
        a.add_pass(Box::new(crate::mark::RecycleMark));
        let mut b = Engine::with_hook(cat, shared.session());
        b.add_pass(Box::new(crate::mark::RecycleMark));

        let mut t = range_template();
        a.optimize(&mut t);

        let p = [Value::Int(100), Value::Int(600)];
        let first = a.run(&t, &p).unwrap();
        assert_eq!(first.stats.reused, 0);
        // session B reuses session A's intermediates wholesale
        let second = b.run(&t, &p).unwrap();
        assert_eq!(second.stats.reused, second.stats.marked);
        assert_eq!(first.export("n"), second.export("n"));

        let stats = shared.stats();
        assert!(stats.cross_session_hits > 0, "{stats:?}");
        assert_eq!(stats.cross_session_hits, stats.hits);
        assert_eq!(stats.sessions, 2);
        shared.pool().check_invariants().unwrap();
    }

    #[test]
    fn clone_attaches_a_new_session() {
        let r = Recycler::new(RecyclerConfig::default());
        let r2 = r.clone();
        assert_ne!(r.session_id(), r2.session_id());
        assert!(Arc::ptr_eq(r.shared(), r2.shared()));
    }

    #[test]
    fn concurrent_duplicate_admission_first_writer_wins() {
        // Interleave two sessions at the hook level: both probe (miss),
        // both execute, both admit the same bind signature. The pool must
        // keep a single instance and charge the loser nothing.
        let shared = SharedRecycler::new(RecyclerConfig::default());
        let cat = catalog(100);
        let mut s1 = shared.session();
        let mut s2 = shared.session();

        use rmal::optimizer::OptPass as _;
        let mut prog = range_template();
        crate::mark::RecycleMark.run(&mut prog, &cat);
        let bind = prog.instrs[0].clone();
        assert_eq!(bind.op, Opcode::Bind);
        let args = vec![Value::str("t"), Value::str("x")];

        s1.query_start(&prog);
        s2.query_start(&prog);
        // both probe and miss
        assert!(matches!(
            s1.before(&cat, 0, &bind, &args),
            HookAction::Proceed
        ));
        assert!(matches!(
            s2.before(&cat, 0, &bind, &args),
            HookAction::Proceed
        ));
        // both execute and admit
        let r1 = rmal::execute_op(&cat, &bind.op, &args).unwrap();
        let r2 = rmal::execute_op(&cat, &bind.op, &args).unwrap();
        s1.after(&cat, 0, &bind, &args, &r1, Duration::from_micros(5), false);
        s2.after(&cat, 0, &bind, &args, &r2, Duration::from_micros(5), false);
        s1.query_end(&prog);
        s2.query_end(&prog);

        let stats = shared.stats();
        assert_eq!(stats.admissions, 1, "single resident instance");
        assert_eq!(stats.duplicate_admissions, 1, "loser resolved explicitly");
        assert_eq!(shared.pool().len(), 1);
        shared.pool().check_invariants().unwrap();
    }

    #[test]
    fn duplicate_loser_chain_stays_admissible() {
        // Race the SELECT (whose executed results carry distinct BatIds,
        // unlike binds, which the catalog caches): the losing session's
        // result is aliased onto the resident entry, so its downstream
        // count still passes admission coherence instead of being
        // silently rejected.
        let shared = SharedRecycler::new(RecyclerConfig::default());
        let cat = catalog(1000);
        let mut s1 = shared.session();
        let mut s2 = shared.session();

        use rmal::optimizer::OptPass as _;
        let mut prog = range_template();
        crate::mark::RecycleMark.run(&mut prog, &cat);
        let bind = prog.instrs[0].clone();
        let select = prog.instrs[1].clone();
        let count = prog.instrs[2].clone();
        let bind_args = vec![Value::str("t"), Value::str("x")];

        s1.query_start(&prog);
        s2.query_start(&prog);
        // s1 admits the bind; s2 hits it — both sessions now hold the
        // same column BAT, so their select signatures agree.
        assert!(matches!(
            s1.before(&cat, 0, &bind, &bind_args),
            HookAction::Proceed
        ));
        let col = rmal::execute_op(&cat, &bind.op, &bind_args).unwrap();
        s1.after(
            &cat,
            0,
            &bind,
            &bind_args,
            &col,
            Duration::from_micros(5),
            false,
        );
        let col2 = match s2.before(&cat, 0, &bind, &bind_args) {
            HookAction::Reuse(v) => v,
            other => panic!("bind must hit, got {other:?}"),
        };
        // both probe the select before either admits it (the race window)
        let sel_args = |c: &Value| {
            vec![
                c.clone(),
                Value::Int(100),
                Value::Int(600),
                Value::Bool(true),
                Value::Bool(true),
            ]
        };
        let a1 = sel_args(&col);
        let a2 = sel_args(&col2);
        assert!(matches!(
            s1.before(&cat, 1, &select, &a1),
            HookAction::Proceed
        ));
        assert!(matches!(
            s2.before(&cat, 1, &select, &a2),
            HookAction::Proceed
        ));
        let sel1 = rmal::execute_op(&cat, &select.op, &a1).unwrap();
        let sel2 = rmal::execute_op(&cat, &select.op, &a2).unwrap();
        assert_ne!(
            sel1.as_bat().unwrap().id(),
            sel2.as_bat().unwrap().id(),
            "distinct materialisations"
        );
        s1.after(
            &cat,
            1,
            &select,
            &a1,
            &sel1,
            Duration::from_micros(5),
            false,
        );
        s2.after(
            &cat,
            1,
            &select,
            &a2,
            &sel2,
            Duration::from_micros(5),
            false,
        );
        assert_eq!(shared.stats().duplicate_admissions, 1);

        // the loser's downstream count references ITS select result
        let cnt_args = vec![sel2.clone()];
        assert!(matches!(
            s2.before(&cat, 2, &count, &cnt_args),
            HookAction::Proceed
        ));
        let n = rmal::execute_op(&cat, &count.op, &cnt_args).unwrap();
        let rejects_before = shared.stats().admission_rejects;
        s2.after(
            &cat,
            2,
            &count,
            &cnt_args,
            &n,
            Duration::from_micros(5),
            false,
        );
        assert_eq!(
            shared.stats().admission_rejects,
            rejects_before,
            "aliased lineage must keep the loser's chain admissible"
        );
        s1.query_end(&prog);
        s2.query_end(&prog);
        shared.pool().check_invariants().unwrap();
    }

    #[test]
    fn eviction_never_frees_entries_pinned_by_another_session() {
        // Session A starts a query and hits an entry (pinning it); session
        // B then floods a tiny pool. A's pinned entry must survive B's
        // evictions.
        let shared = SharedRecycler::new(RecyclerConfig::default().entry_limit(2));
        let cat = catalog(1000);
        let mut a = Engine::with_hook(cat.clone(), shared.session());
        a.add_pass(Box::new(crate::mark::RecycleMark));
        let mut t = range_template();
        a.optimize(&mut t);
        // admit the bind + select + count thread
        a.run(&t, &[Value::Int(1), Value::Int(2)]).unwrap();
        let protected_sig = {
            let pool = shared.pool();
            let sig = pool
                .iter()
                .find(|e| e.family == "bind")
                .unwrap()
                .sig
                .clone();
            sig
        };

        // hold a pin from a simulated in-flight query of session A
        let mut holder = shared.session();
        holder.query_start(&t);
        let bind_instr = t.instrs[0].clone();
        let bind_args = vec![Value::str("t"), Value::str("x")];
        let action = holder.before(&cat, 0, &bind_instr, &bind_args);
        assert!(matches!(action, HookAction::Reuse(_)), "bind must hit");

        // session B floods the pool with disjoint selections
        let mut b = Engine::with_hook(cat.clone(), shared.session());
        b.add_pass(Box::new(crate::mark::RecycleMark));
        for i in 0..6 {
            b.run(&t, &[Value::Int(i * 50), Value::Int(i * 50 + 30)])
                .unwrap();
        }
        assert!(shared.stats().evictions > 0, "pressure must evict");
        assert!(
            shared.pool().lookup(&protected_sig).is_some(),
            "the entry pinned by the in-flight session must survive"
        );
        holder.query_end(&t);
        shared.pool().check_invariants().unwrap();
    }
}
