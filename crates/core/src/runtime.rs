//! The recycler run-time support (paper Algorithm 1) as an interpreter hook.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rbat::catalog::CommitReport;
use rbat::hash::{FxHashMap, FxHashSet};
use rbat::{BatId, Catalog, Value};
use rmal::{ExecHook, HookAction, Instr, Opcode, Program};

use crate::config::{AdmissionPolicy, RecyclerConfig, UpdateMode};
use crate::entry::{EntryId, InstrKey, PoolEntry};
use crate::eviction::{evict, EvictTrigger};
use crate::pool::RecyclePool;
use crate::propagate::propagate_commit;
use crate::signature::Sig;
use crate::stats::{PoolSnapshot, QueryRecord, RecyclerStats};
use crate::subsume::{self, Subsumption};

/// The recycler: implements `recycleEntry`/`recycleExit` around every
/// marked instruction, manages the [`RecyclePool`] under the configured
/// policies, and synchronises the pool on updates.
pub struct Recycler {
    /// Live configuration (admission/eviction/limits/update mode).
    pub config: RecyclerConfig,
    pool: RecyclePool,
    /// Credits per template instruction (CREDIT/ADAPT admission).
    credits: FxHashMap<InstrKey, i64>,
    /// ADAPT bookkeeping: invocations per template; reuses per instruction.
    template_invocations: FxHashMap<u64, u64>,
    instr_reuses: FxHashMap<InstrKey, u64>,
    adapt_unlimited: FxHashSet<InstrKey>,
    adapt_banned: FxHashSet<InstrKey>,
    /// Persistent BATs (bound columns, join indices) with their
    /// base-column lineage: stable identities that admission may reference
    /// without a pool-resident producer.
    persistent: FxHashMap<BatId, BTreeSet<(String, String)>>,
    /// Monotone event counter (LRU / HP ageing).
    tick: u64,
    /// Invocation counter (local-vs-global reuse discrimination).
    invocation: u64,
    current_template: u64,
    /// Entries touched by the current invocation — protected from eviction.
    protected: FxHashSet<EntryId>,
    stats: RecyclerStats,
    query_log: Vec<QueryRecord>,
    current: QueryRecord,
}

impl Recycler {
    /// Create a recycler with the given configuration.
    pub fn new(config: RecyclerConfig) -> Recycler {
        Recycler {
            config,
            pool: RecyclePool::new(),
            credits: FxHashMap::default(),
            template_invocations: FxHashMap::default(),
            instr_reuses: FxHashMap::default(),
            adapt_unlimited: FxHashSet::default(),
            adapt_banned: FxHashSet::default(),
            persistent: FxHashMap::default(),
            tick: 0,
            invocation: 0,
            current_template: 0,
            protected: FxHashSet::default(),
            stats: RecyclerStats::default(),
            query_log: Vec::new(),
            current: QueryRecord::default(),
        }
    }

    /// Borrow the pool (diagnostics, tests, experiment harness).
    pub fn pool(&self) -> &RecyclePool {
        &self.pool
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &RecyclerStats {
        &self.stats
    }

    /// Per-query records appended at every `query_end`.
    pub fn query_log(&self) -> &[QueryRecord] {
        &self.query_log
    }

    /// Snapshot of the pool content (Table III material).
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot::capture(&self.pool)
    }

    /// Empty the recycle pool (the experiments' "emptied recycle pool"
    /// preparation step) without resetting credit accounts.
    pub fn clear_pool(&mut self) {
        self.pool = RecyclePool::new();
        self.protected.clear();
    }

    /// Reset all recycler state: pool, credits, statistics, logs.
    pub fn reset(&mut self) {
        let config = self.config;
        *self = Recycler::new(config);
    }

    // ----- internal helpers -------------------------------------------------

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Bytes a result is charged for: only what the instruction newly
    /// materialised. Binds reference persistent storage, zero-cost
    /// viewpoint instructions share their operand's buffers (paper §2.3,
    /// Table III shows bind/markT at 0 MB).
    fn charge_bytes(op: Opcode, result: &Value) -> usize {
        match op {
            Opcode::Bind | Opcode::BindIdx => 64,
            op if op.zero_cost() => 64,
            _ => result
                .as_bat()
                .map(|b| b.resident_bytes())
                .unwrap_or(std::mem::size_of::<Value>()),
        }
    }

    fn base_columns_of(&self, catalog: &Catalog, instr: &Instr, args: &[Value]) -> BTreeSet<(String, String)> {
        let mut cols = BTreeSet::new();
        match instr.op {
            Opcode::Bind => {
                if let (Some(t), Some(c)) = (
                    args.first().and_then(|v| v.as_str()),
                    args.get(1).and_then(|v| v.as_str()),
                ) {
                    cols.insert((t.to_string(), c.to_string()));
                }
            }
            Opcode::BindIdx => {
                if let Some(name) = args.first().and_then(|v| v.as_str()) {
                    if let Some(def) = catalog.index_def(name) {
                        cols.insert((def.from_table.clone(), def.from_column.clone()));
                        cols.insert((def.to_table.clone(), def.to_key.clone()));
                    }
                }
            }
            _ => {
                for a in args {
                    if let Value::Bat(b) = a {
                        if let Some(eid) = self.pool.entry_of_result(b.id()) {
                            if let Some(e) = self.pool.get(eid) {
                                cols.extend(e.base_columns.iter().cloned());
                            }
                        } else if let Some(pcols) = self.persistent.get(&b.id()) {
                            cols.extend(pcols.iter().cloned());
                        }
                    }
                }
            }
        }
        cols
    }

    /// Record a hit on `id`: statistics, protection, credit return.
    fn register_hit(&mut self, id: EntryId) -> Value {
        let tick = self.next_tick();
        let invocation = self.invocation;
        let e = self.pool.get_mut(id).expect("hit entry exists");
        e.last_used = tick;
        let local = e.admitted_invocation == invocation;
        if local {
            e.local_reuses += 1;
        } else {
            e.global_reuses += 1;
        }
        e.time_saved += e.cpu;
        let saved = e.cpu;
        let creator = e.creator;
        let result = e.result.clone();
        let return_credit_now = local && !e.credit_returned;
        if return_credit_now {
            e.credit_returned = true;
        }
        if return_credit_now {
            *self.credits.entry(creator).or_insert(0) += 1;
        }
        *self.instr_reuses.entry(creator).or_insert(0) += 1;
        self.protected.insert(id);
        self.stats.hits += 1;
        self.stats.time_saved += saved;
        self.current.hits += 1;
        self.current.saved += saved;
        if local {
            self.stats.local_hits += 1;
            self.current.local_hits += 1;
        } else {
            self.stats.global_hits += 1;
            self.current.global_hits += 1;
        }
        result
    }

    /// Record that `id` served as a subsumption source.
    fn register_subsumption_source(&mut self, id: EntryId) {
        let tick = self.next_tick();
        if let Some(e) = self.pool.get_mut(id) {
            e.last_used = tick;
            e.subsumption_uses += 1;
        }
        self.protected.insert(id);
    }

    /// The admission decision of `recycleExit` (paper §4.2).
    fn admission_allows(&mut self, key: InstrKey) -> bool {
        match self.config.admission {
            AdmissionPolicy::KeepAll => true,
            AdmissionPolicy::Credit(k) => {
                let c = self.credits.entry(key).or_insert(k as i64);
                if *c > 0 {
                    *c -= 1;
                    true
                } else {
                    false
                }
            }
            AdmissionPolicy::Adaptive(k) => {
                if self.adapt_unlimited.contains(&key) {
                    return true;
                }
                if self.adapt_banned.contains(&key) {
                    return false;
                }
                let invocations = self
                    .template_invocations
                    .get(&key.0)
                    .copied()
                    .unwrap_or(0);
                if invocations > k as u64 {
                    // decision time: reused at least once → unlimited
                    if self.instr_reuses.get(&key).copied().unwrap_or(0) >= 1 {
                        self.adapt_unlimited.insert(key);
                        return true;
                    }
                    self.adapt_banned.insert(key);
                    return false;
                }
                let c = self.credits.entry(key).or_insert(k as i64);
                if *c > 0 {
                    *c -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn undo_admission_charge(&mut self, key: InstrKey) {
        if matches!(
            self.config.admission,
            AdmissionPolicy::Credit(_) | AdmissionPolicy::Adaptive(_)
        ) {
            if let Some(c) = self.credits.get_mut(&key) {
                *c += 1;
            }
        }
    }

    /// Make room for `need_bytes` / one more entry; returns false when the
    /// pool cannot be shrunk enough.
    fn make_room(&mut self, need_bytes: usize) -> bool {
        let now = self.tick;
        if let Some(limit) = self.config.mem_limit {
            if need_bytes > limit {
                return false;
            }
            if self.pool.bytes() + need_bytes > limit {
                let need = self.pool.bytes() + need_bytes - limit;
                let evicted = evict(
                    &mut self.pool,
                    self.config.eviction,
                    EvictTrigger::Memory(need),
                    &self.protected,
                    now,
                );
                self.settle_evictions(&evicted);
                if self.pool.bytes() + need_bytes > limit {
                    return false;
                }
            }
        }
        if let Some(limit) = self.config.entry_limit {
            if limit == 0 {
                return false;
            }
            if self.pool.len() + 1 > limit {
                let need = self.pool.len() + 1 - limit;
                let evicted = evict(
                    &mut self.pool,
                    self.config.eviction,
                    EvictTrigger::Entries(need),
                    &self.protected,
                    now,
                );
                self.settle_evictions(&evicted);
                if self.pool.len() + 1 > limit {
                    return false;
                }
            }
        }
        true
    }

    fn settle_evictions(&mut self, evicted: &[PoolEntry]) {
        self.stats.evictions += evicted.len() as u64;
        for e in evicted {
            self.protected.remove(&e.id);
            // a globally reused instance returns its credit at eviction
            if e.global_reuses > 0 && !e.credit_returned {
                *self.credits.entry(e.creator).or_insert(0) += 1;
            }
        }
    }

    /// Admit an executed instruction's result (the body of `recycleExit`).
    fn admit(
        &mut self,
        catalog: &Catalog,
        pc: usize,
        instr: &Instr,
        args: &[Value],
        result: &Value,
        cpu: Duration,
    ) {
        let key: InstrKey = (self.current_template, pc);
        // register persistent identities first: they anchor coherence
        if matches!(instr.op, Opcode::Bind | Opcode::BindIdx) {
            if let Value::Bat(b) = result {
                let cols = self.base_columns_of(catalog, instr, args);
                self.persistent.insert(b.id(), cols);
            }
        }
        // Cheap precheck of lineage coherence (repeated authoritatively
        // after eviction below).
        for a in args {
            if let Value::Bat(b) = a {
                if self.pool.entry_of_result(b.id()).is_none()
                    && !self.persistent.contains_key(&b.id())
                {
                    self.stats.admission_rejects += 1;
                    return;
                }
            }
        }
        if !self.admission_allows(key) {
            self.stats.admission_rejects += 1;
            return;
        }
        let bytes = Self::charge_bytes(instr.op, result);
        if !self.make_room(bytes) {
            self.stats.admission_rejects += 1;
            self.undo_admission_charge(key);
            return;
        }
        // Bottom-up matching coherence: every BAT argument must itself be
        // reachable for future matching — as a pool result or a persistent
        // BAT (paper §4.1: keep whole threads intact). Resolved *after*
        // make_room: eviction may have taken a prefix, in which case
        // admitting this dependent would be useless.
        let mut parents: Vec<EntryId> = Vec::new();
        for a in args {
            if let Value::Bat(b) = a {
                if let Some(eid) = self.pool.entry_of_result(b.id()) {
                    parents.push(eid);
                } else if !self.persistent.contains_key(&b.id()) {
                    self.stats.admission_rejects += 1;
                    self.undo_admission_charge(key);
                    return;
                }
            }
        }
        let sig = Sig::of(instr.op, args);
        let base_columns = self.base_columns_of(catalog, instr, args);
        let tick = self.next_tick();
        let entry = PoolEntry {
            id: self.pool.next_id(),
            sig,
            args: args.to_vec(),
            result: result.clone(),
            result_id: result.as_bat().map(|b| b.id()),
            bytes,
            cpu,
            family: instr.op.family(),
            parents,
            base_columns,
            admitted_tick: tick,
            last_used: tick,
            admitted_invocation: self.invocation,
            local_reuses: 0,
            global_reuses: 0,
            subsumption_uses: 0,
            creator: key,
            time_saved: Duration::ZERO,
            credit_returned: false,
        };
        let result_id = entry.result_id;
        let id = self.pool.insert(entry);
        self.protected.insert(id);
        self.stats.admissions += 1;
        self.current.admitted += 1;
        self.current.bytes_admitted += bytes as u64;
        // subset semantics for the subsumption machinery (§5.1)
        if let (Some(rid), Some(Value::Bat(arg0))) = (result_id, args.first()) {
            if matches!(
                instr.op,
                Opcode::Select
                    | Opcode::Uselect
                    | Opcode::Like
                    | Opcode::SelectNotNil
                    | Opcode::Semijoin
                    | Opcode::Diff
                    | Opcode::Kunique
                    | Opcode::Sort
                    | Opcode::TopN
            ) {
                self.pool.add_subset_edge(rid, arg0.id());
            }
        }
    }

    /// Invalidate every intermediate whose lineage intersects the affected
    /// columns (paper §6.4: immediate column-wise invalidation).
    fn invalidate_columns(&mut self, affected: &BTreeSet<(String, String)>) {
        let roots: Vec<EntryId> = self
            .pool
            .iter()
            .filter(|e| e.base_columns.intersection(affected).next().is_some())
            .map(|e| e.id)
            .collect();
        let mut removed = 0u64;
        for r in roots {
            removed += self.pool.remove_subtree(r).len() as u64;
        }
        self.stats.invalidated += removed;
        // drop stale persistent registrations
        self.persistent
            .retain(|_, cols| cols.intersection(affected).next().is_none());
    }
}

impl ExecHook for Recycler {
    fn query_start(&mut self, program: &Program) {
        self.invocation += 1;
        self.current_template = program.id;
        *self.template_invocations.entry(program.id).or_insert(0) += 1;
        self.protected.clear();
        self.current = QueryRecord {
            template: program.id,
            name: program.name.clone(),
            ..Default::default()
        };
    }

    fn before(
        &mut self,
        _catalog: &Catalog,
        pc: usize,
        instr: &Instr,
        args: &[Value],
    ) -> HookAction {
        let t0 = Instant::now();
        self.stats.monitored += 1;
        self.current.monitored += 1;
        let sig = Sig::of(instr.op, args);

        // Phase 1: exact match (paper §3.3).
        if let Some(id) = self.pool.lookup(&sig) {
            let result = self.register_hit(id);
            self.stats.overhead += t0.elapsed();
            return HookAction::Reuse(result);
        }

        // Phase 2: subsumption (paper §5).
        if self.config.subsumption {
            let attempt = match instr.op {
                Opcode::Select => subsume::subsume_select(&self.pool, args),
                Opcode::Uselect => subsume::subsume_uselect(&self.pool, args),
                Opcode::Like => subsume::subsume_like(&self.pool, args),
                Opcode::Semijoin => subsume::subsume_semijoin(&self.pool, args),
                _ => None,
            };
            if let Some(Subsumption::Rewrite { args: new_args, source }) = attempt {
                self.register_subsumption_source(source);
                self.stats.subsumed += 1;
                self.current.subsumed += 1;
                self.stats.overhead += t0.elapsed();
                return HookAction::Rewrite(new_args);
            }
            if self.config.combined_subsumption && instr.op == Opcode::Select {
                if let Some(Subsumption::Combined { segments, search_time }) =
                    subsume::subsume_combined(
                        &self.pool,
                        args,
                        self.config.combined_max_candidates,
                    )
                {
                    self.stats.subsume_search += search_time;
                    let exec0 = Instant::now();
                    if let Some(bat) = subsume::execute_combined(&self.pool, &segments) {
                        for (id, _) in &segments {
                            self.register_subsumption_source(*id);
                        }
                        let result = Value::Bat(Arc::new(bat));
                        let cpu = exec0.elapsed();
                        self.stats.subsumed += 1;
                        self.current.subsumed += 1;
                        // recycleExit for the pieced result, under the
                        // ORIGINAL signature.
                        self.admit(_catalog, pc, instr, args, &result, cpu);
                        self.stats.overhead += t0.elapsed();
                        return HookAction::Computed(result);
                    }
                }
            }
        }
        self.stats.overhead += t0.elapsed();
        HookAction::Proceed
    }

    fn after(
        &mut self,
        catalog: &Catalog,
        pc: usize,
        instr: &Instr,
        args: &[Value],
        result: &Value,
        cpu: Duration,
        _subsumed: bool,
    ) {
        let t0 = Instant::now();
        self.admit(catalog, pc, instr, args, result, cpu);
        self.stats.overhead += t0.elapsed();
    }

    fn query_end(&mut self, _program: &Program) {
        self.protected.clear();
        let record = std::mem::take(&mut self.current);
        self.query_log.push(record);
    }

    fn update_event(&mut self, report: &CommitReport, catalog: &Catalog) {
        // DDL-free engine: every commit is DML on one table.
        if report.inserted.is_empty() && report.deleted.is_empty() {
            return;
        }
        if self.config.update_mode == UpdateMode::Propagate {
            if let Some(outcome) = propagate_commit(&mut self.pool, report, catalog) {
                self.stats.propagated += outcome.refreshed;
                self.stats.invalidated += outcome.invalidated;
                for (bat, cols) in outcome.new_persistent {
                    self.persistent.insert(bat, cols);
                }
                return;
            }
        }
        // Immediate column-level invalidation (§6.4): inserts and deletes
        // affect every column of the table (the row set changed); rebuilt
        // indices affect their endpoints.
        let mut affected: BTreeSet<(String, String)> = BTreeSet::new();
        if let Ok(table) = catalog.table(&report.table) {
            for (c, _) in table.schema() {
                affected.insert((report.table.clone(), c.clone()));
            }
        }
        for idx in &report.rebuilt_indices {
            if let Some(def) = catalog.index_def(idx) {
                affected.insert((def.from_table.clone(), def.from_column.clone()));
                affected.insert((def.to_table.clone(), def.to_key.clone()));
            }
        }
        self.invalidate_columns(&affected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbat::{LogicalType, TableBuilder};
    use rmal::{Engine, ProgramBuilder, P};

    fn catalog(n: i64) -> Catalog {
        let mut cat = Catalog::new();
        let mut tb = TableBuilder::new("t")
            .column("x", LogicalType::Int)
            .column("y", LogicalType::Int);
        for i in 0..n {
            tb.push_row(&[Value::Int((i * 37) % n), Value::Int(i)]);
        }
        cat.add_table(tb.finish());
        cat
    }

    fn engine(config: RecyclerConfig) -> Engine<Recycler> {
        let mut e = Engine::with_hook(catalog(1000), Recycler::new(config));
        e.add_pass(Box::new(crate::mark::RecycleMark));
        e
    }

    fn range_template() -> rmal::Program {
        let mut b = ProgramBuilder::new("range_count", 2);
        let col = b.bind("t", "x");
        let sel = b.select_closed(col, P(0), P(1));
        let n = b.count(sel);
        b.export("n", n);
        b.finish()
    }

    #[test]
    fn second_invocation_hits() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        let p = [Value::Int(100), Value::Int(600)];
        let first = e.run(&t, &p).unwrap();
        assert_eq!(first.stats.reused, 0);
        let second = e.run(&t, &p).unwrap();
        assert_eq!(second.stats.reused, second.stats.marked);
        assert_eq!(first.export("n"), second.export("n"));
        assert_eq!(e.hook.stats().global_hits, second.stats.reused as u64);
        e.hook.pool().check_invariants().unwrap();
    }

    #[test]
    fn different_params_subsume() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        let wide = e.run(&t, &[Value::Int(0), Value::Int(900)]).unwrap();
        let narrow = e.run(&t, &[Value::Int(100), Value::Int(500)]).unwrap();
        // bind hits; select runs in subsumed form
        assert!(narrow.stats.reused >= 1);
        assert_eq!(narrow.stats.subsumed, 1);
        // correctness: count equals a fresh engine's answer
        let mut naive = Engine::new(catalog(1000));
        let mut t2 = range_template();
        naive.optimize(&mut t2);
        let expect = naive
            .run(&t2, &[Value::Int(100), Value::Int(500)])
            .unwrap();
        assert_eq!(narrow.export("n"), expect.export("n"));
        let _ = wide;
    }

    #[test]
    fn subsumption_can_be_disabled() {
        let mut e = engine(RecyclerConfig::default().subsumption(false));
        let mut t = range_template();
        e.optimize(&mut t);
        e.run(&t, &[Value::Int(0), Value::Int(900)]).unwrap();
        let narrow = e.run(&t, &[Value::Int(100), Value::Int(500)]).unwrap();
        assert_eq!(narrow.stats.subsumed, 0);
    }

    #[test]
    fn entry_limit_caps_pool() {
        let cfg = RecyclerConfig::default().entry_limit(2);
        let mut e = engine(cfg);
        let mut t = range_template();
        e.optimize(&mut t);
        for i in 0..5 {
            e.run(&t, &[Value::Int(i * 10), Value::Int(i * 10 + 100)])
                .unwrap();
        }
        assert!(e.hook.pool().len() <= 2);
        assert!(e.hook.stats().evictions > 0);
        e.hook.pool().check_invariants().unwrap();
    }

    #[test]
    fn mem_limit_respected() {
        let cfg = RecyclerConfig::default().mem_limit(16 * 1024);
        let mut e = engine(cfg);
        let mut t = range_template();
        e.optimize(&mut t);
        for i in 0..6 {
            e.run(&t, &[Value::Int(i * 7), Value::Int(i * 7 + 400)])
                .unwrap();
        }
        assert!(e.hook.pool().bytes() <= 16 * 1024);
        e.hook.pool().check_invariants().unwrap();
    }

    #[test]
    fn credit_policy_stops_admitting() {
        let cfg = RecyclerConfig::default()
            .admission(AdmissionPolicy::Credit(2))
            .subsumption(false);
        let mut e = engine(cfg);
        let mut t = range_template();
        e.optimize(&mut t);
        // disjoint ranges: no reuse, credits drain after 2 admissions
        for i in 0..5 {
            e.run(
                &t,
                &[Value::Int(i * 100), Value::Int(i * 100 + 50)],
            )
            .unwrap();
        }
        // bind is admitted once then always hit; the select+count threads
        // spend their credits after 2 instances each
        let selects = e
            .hook
            .pool()
            .iter()
            .filter(|en| en.family == "select")
            .count();
        assert_eq!(selects, 2, "credit(2) must cap select instances");
        assert!(e.hook.stats().admission_rejects > 0);
    }

    #[test]
    fn invalidation_on_update() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        let p = [Value::Int(0), Value::Int(500)];
        e.run(&t, &p).unwrap();
        assert!(e.hook.pool().len() > 0);
        e.update("t", vec![vec![Value::Int(1), Value::Int(1)]], vec![])
            .unwrap();
        assert_eq!(
            e.hook.pool().len(),
            0,
            "all intermediates derive from t and must be invalidated"
        );
        // next run recomputes and matches fresh binds
        let out = e.run(&t, &p).unwrap();
        assert_eq!(out.stats.reused, 0);
        let out2 = e.run(&t, &p).unwrap();
        assert!(out2.stats.reused > 0);
    }

    #[test]
    fn untouched_tables_survive_update() {
        let mut cat = catalog(100);
        let mut tb = TableBuilder::new("other").column("z", LogicalType::Int);
        tb.push_row(&[Value::Int(1)]);
        cat.add_table(tb.finish());
        let mut e = Engine::with_hook(cat, Recycler::new(RecyclerConfig::default()));
        e.add_pass(Box::new(crate::mark::RecycleMark));
        let mut t = range_template();
        e.optimize(&mut t);
        e.run(&t, &[Value::Int(0), Value::Int(50)]).unwrap();
        let before = e.hook.pool().len();
        e.update("other", vec![vec![Value::Int(2)]], vec![]).unwrap();
        assert_eq!(e.hook.pool().len(), before, "t-derived entries survive");
    }

    #[test]
    fn pool_listing_renders_table1_view() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        e.run(&t, &[Value::Int(5), Value::Int(300)]).unwrap();
        let listing = e.hook.pool().listing();
        assert!(listing.contains("sql.bind"), "{listing}");
        assert!(listing.contains("algebra.select"));
        assert!(listing.contains("bat#"));
        assert!(listing.lines().count() >= 4);
    }

    #[test]
    fn query_log_records() {
        let mut e = engine(RecyclerConfig::default());
        let mut t = range_template();
        e.optimize(&mut t);
        let p = [Value::Int(1), Value::Int(2)];
        e.run(&t, &p).unwrap();
        e.run(&t, &p).unwrap();
        let log = e.hook.query_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].hits, 0);
        assert!(log[1].hits > 0);
        assert!(log[1].hit_ratio() > 0.9);
    }
}
