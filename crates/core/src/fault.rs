//! Deterministic fault injection — the `failpoints` test harness.
//!
//! Compiled only under the `failpoints` cargo feature; default builds
//! carry **zero** code from this module and zero checks at the
//! injection sites. With the feature on, a handful of named sites
//! across the admission, eviction, collector and wire layers consult a
//! process-global registry on every pass and either proceed, panic,
//! deny the operation, or surface an injected I/O error — exactly as a
//! test scripted via [`FaultPlan`].
//!
//! Everything is deterministic: probabilistic triggers draw from a
//! seeded xorshift PRNG (no wall clock, no OS entropy), and counting
//! triggers fire on exact hit ordinals. Two runs with the same seed and
//! the same serialized operation order inject the same faults. Per-site
//! hit counters ([`hits`]) let tests assert a site was actually
//! exercised rather than silently skipped.
//!
//! The registry is global, so tests that install plans must serialise
//! themselves (a `static Mutex` works) and [`clear`] the registry when
//! done. Sites are plain strings; the ones wired today:
//!
//! | site                | layer                    | honoured actions |
//! |---------------------|--------------------------|------------------|
//! | `admission.reserve` | byte-budget reservation  | Deny, Panic      |
//! | `pool.insert`       | shard insert, lock held  | Panic            |
//! | `pool.insert.wired` | insert, indexes half-wired | Panic          |
//! | `pool.demote.wired` | demotion, entry re-tiered, books stale | Panic |
//! | `evict.gather`      | eviction victim gather   | Panic            |
//! | `evict.remove`      | batched removal, lock held | Panic          |
//! | `collector.round`   | background collector round | Panic          |
//! | `tier.compress`     | demote rung, before codec work | Deny, Io, Panic |
//! | `tier.spill`        | demote rung, before spill append | Deny, Io, Panic |
//! | `tier.rehydrate`    | hit path, before decompress/read-back | Deny, Io, Panic |
//! | `wire.read`         | server frame read        | Io, Panic        |
//! | `wire.write`        | server frame write       | Io, Panic        |
//!
//! The three `tier.*` sites treat Deny and Io identically: the entry is
//! skipped (demotion) or the probe degrades to a miss (rehydrate) — the
//! residency ladder never turns an injected fault into a wrong answer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// What an armed failpoint does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the site (exercises unwind containment and lock
    /// poisoning).
    Panic,
    /// Deny the operation: the site reports failure through its normal
    /// "no" path (e.g. an admission reservation returns false).
    Deny,
    /// Surface an injected I/O error at the site (wire sites only).
    Io,
}

/// When an armed failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on the `n`-th hit of the site only (1-based), never again.
    Nth(u64),
    /// Skip the first `skip` hits, then fire on the next `fire` hits.
    Times {
        /// Hits to let through first.
        skip: u64,
        /// Hits to fire on after the skip window.
        fire: u64,
    },
    /// Fire on roughly `num` out of `den` hits, decided by the plan's
    /// seeded PRNG — deterministic for a fixed seed and hit order.
    Ratio(u32, u32),
}

struct Rule {
    trigger: Trigger,
    action: FaultAction,
    /// Hits this rule has evaluated (not necessarily fired on).
    seen: u64,
    /// Times this rule has fired.
    fired: u64,
}

#[derive(Default)]
struct Inner {
    /// xorshift64* state; 0 means "no PRNG" (non-Ratio plans).
    rng: u64,
    rules: HashMap<&'static str, Vec<Rule>>,
    hits: HashMap<String, u64>,
}

struct Registry {
    /// Fast path: no plan installed ⇒ one relaxed load per site pass.
    armed: AtomicBool,
    inner: Mutex<Inner>,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        armed: AtomicBool::new(false),
        inner: Mutex::new(Inner::default()),
    })
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// A scripted set of failpoint rules, installed atomically.
///
/// ```ignore
/// FaultPlan::seeded(42)
///     .on("pool.insert.wired", Trigger::Nth(1), FaultAction::Panic)
///     .on("admission.reserve", Trigger::Ratio(1, 8), FaultAction::Deny)
///     .install();
/// ```
#[derive(Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<(&'static str, Trigger, FaultAction)>,
}

impl FaultPlan {
    /// Start an empty plan whose [`Trigger::Ratio`] draws come from a
    /// xorshift PRNG seeded with `seed` (zero is remapped to a fixed
    /// non-zero constant — xorshift has no zero state).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
            rules: Vec::new(),
        }
    }

    /// Arm `site` with `trigger`/`action`. Multiple rules per site are
    /// evaluated in installation order; the first that fires wins.
    pub fn on(mut self, site: &'static str, trigger: Trigger, action: FaultAction) -> FaultPlan {
        self.rules.push((site, trigger, action));
        self
    }

    /// Install this plan, replacing any previous one and resetting all
    /// hit counters.
    pub fn install(self) {
        let reg = registry();
        let mut inner = reg.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.rng = self.seed;
        inner.hits.clear();
        inner.rules.clear();
        for (site, trigger, action) in self.rules {
            inner.rules.entry(site).or_default().push(Rule {
                trigger,
                action,
                seen: 0,
                fired: 0,
            });
        }
        let armed = !inner.rules.is_empty();
        reg.armed.store(armed, Ordering::Release);
    }
}

/// Remove every armed rule and reset hit counters. Sites become
/// zero-cost-ish again (one relaxed load per pass).
pub fn clear() {
    let reg = registry();
    let mut inner = reg.inner.lock().unwrap_or_else(PoisonError::into_inner);
    inner.rules.clear();
    inner.hits.clear();
    inner.rng = 0;
    reg.armed.store(false, Ordering::Release);
}

/// Total hits recorded for `site` since the last [`FaultPlan::install`]
/// / [`clear`] — fired or not. Lets tests assert a site was exercised.
pub fn hits(site: &str) -> u64 {
    let reg = registry();
    let inner = reg.inner.lock().unwrap_or_else(PoisonError::into_inner);
    inner.hits.get(site).copied().unwrap_or(0)
}

/// Times any rule on `site` actually fired since the last install/clear.
pub fn fired(site: &str) -> u64 {
    let reg = registry();
    let inner = reg.inner.lock().unwrap_or_else(PoisonError::into_inner);
    inner
        .rules
        .get(site)
        .map(|rules| rules.iter().map(|r| r.fired).sum())
        .unwrap_or(0)
}

/// Evaluate `site` against the installed plan without acting: returns
/// the action to take, if any. Prefer [`fire`] at injection sites.
pub fn check(site: &str) -> Option<FaultAction> {
    let reg = registry();
    if !reg.armed.load(Ordering::Acquire) {
        return None;
    }
    let mut inner = reg.inner.lock().unwrap_or_else(PoisonError::into_inner);
    let inner = &mut *inner;
    let rules = inner.rules.get_mut(site)?;
    // Count the hit only for armed sites: an unarmed site returned above
    // via `get_mut`'s None, keeping the unarmed pass allocation-free.
    let hit = {
        let h = inner.hits.entry(site.to_owned()).or_insert(0);
        *h += 1;
        *h
    };
    for rule in rules.iter_mut() {
        rule.seen += 1;
        let fires = match rule.trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => hit == n,
            Trigger::Times { skip, fire } => rule.seen > skip && rule.seen <= skip + fire,
            Trigger::Ratio(num, den) => {
                let den = den.max(1) as u64;
                (xorshift(&mut inner.rng) % den) < num as u64
            }
        };
        if fires {
            rule.fired += 1;
            return Some(rule.action);
        }
    }
    None
}

/// Evaluate `site`; if the planned action is [`FaultAction::Panic`],
/// panic right here (the site's stack is the interesting one). Any
/// other firing action is returned for the call site to interpret.
pub fn fire(site: &str) -> Option<FaultAction> {
    match check(site) {
        Some(FaultAction::Panic) => panic!("failpoint '{site}': injected panic"),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The registry is process-global: serialise the tests in this module.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    #[test]
    fn nth_fires_exactly_once() {
        let _g = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        FaultPlan::seeded(1)
            .on("t.nth", Trigger::Nth(3), FaultAction::Deny)
            .install();
        let got: Vec<bool> = (0..5).map(|_| check("t.nth").is_some()).collect();
        assert_eq!(got, vec![false, false, true, false, false]);
        assert_eq!(hits("t.nth"), 5);
        assert_eq!(fired("t.nth"), 1);
        clear();
    }

    #[test]
    fn times_window_and_clear() {
        let _g = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        FaultPlan::seeded(1)
            .on(
                "t.win",
                Trigger::Times { skip: 2, fire: 2 },
                FaultAction::Io,
            )
            .install();
        let got: Vec<bool> = (0..6).map(|_| check("t.win").is_some()).collect();
        assert_eq!(got, vec![false, false, true, true, false, false]);
        clear();
        assert_eq!(check("t.win"), None);
        assert_eq!(hits("t.win"), 0);
    }

    #[test]
    fn ratio_is_deterministic_for_a_seed() {
        let _g = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let run = |seed: u64| -> Vec<bool> {
            FaultPlan::seeded(seed)
                .on("t.ratio", Trigger::Ratio(1, 4), FaultAction::Deny)
                .install();
            let got = (0..64).map(|_| check("t.ratio").is_some()).collect();
            clear();
            got
        };
        assert_eq!(run(7), run(7));
        let fired = run(7).iter().filter(|b| **b).count();
        assert!(fired > 0 && fired < 64, "ratio fired {fired}/64");
    }

    #[test]
    fn unarmed_sites_cost_one_load() {
        let _g = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        assert_eq!(check("t.unarmed"), None);
        assert_eq!(hits("t.unarmed"), 0);
        FaultPlan::seeded(1)
            .on("t.other", Trigger::Always, FaultAction::Panic)
            .install();
        // Unrelated armed plan: this site still passes and is not counted.
        assert_eq!(check("t.unarmed"), None);
        assert_eq!(hits("t.unarmed"), 0);
        clear();
    }

    #[test]
    fn fire_panics_on_panic_action() {
        let _g = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        FaultPlan::seeded(1)
            .on("t.boom", Trigger::Always, FaultAction::Panic)
            .install();
        let r = std::panic::catch_unwind(|| fire("t.boom"));
        assert!(r.is_err());
        clear();
    }
}
