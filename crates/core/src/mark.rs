//! The recycler optimiser: marking instructions for run-time monitoring.

use rbat::Catalog;
use rmal::optimizer::OptPass;
use rmal::{Arg, Program};

/// The marking pass of paper §3.1. An instruction becomes subject to
/// recycler monitoring iff its opcode is eligible (no updates, no cheap
/// scalar expressions, no exports) and *all* its arguments are constants,
/// template parameters, or results of instructions already designated as
/// recycling candidates. Threads of operators rooted at `sql.bind` are
/// thereby marked as far through the plan as possible (the shaded nodes of
/// paper Figure 2); parameter-dependent instructions are marked too — they
/// are reused when parameter values match or allow subsumption.
///
/// Position in the pipeline matters: run this *after* constant folding and
/// dead-code elimination (`Engine::add_pass` appends, so the default
/// ordering is correct).
pub struct RecycleMark;

impl OptPass for RecycleMark {
    fn name(&self) -> &'static str {
        "recycler"
    }

    fn run(&self, program: &mut Program, _catalog: &Catalog) {
        let mut candidate = vec![false; program.nvars as usize];
        for instr in &mut program.instrs {
            let args_ok = instr.args.iter().all(|a| match a {
                Arg::Const(_) | Arg::Param(_) => true,
                Arg::Var(v) => candidate[v.index()],
            });
            if !args_ok {
                continue;
            }
            if instr.op.recyclable() {
                instr.recycle = true;
                candidate[instr.result.index()] = true;
            } else if instr.op.pure_scalar() {
                // not monitored itself (too cheap), but its result is a
                // deterministic function of parameters — consumers can
                // still match by value at run time
                candidate[instr.result.index()] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmal::{ProgramBuilder, P};

    #[test]
    fn marks_threads_from_binds() {
        let mut b = ProgramBuilder::new("t", 1);
        let col = b.bind("orders", "o_orderdate");
        let sel = b.select_half_open(col, P(0), Value::date("1996-10-01"));
        let n = b.count(sel);
        b.export("n", n);
        let mut p = b.finish();
        RecycleMark.run(&mut p, &Catalog::new());
        let marked: Vec<bool> = p.instrs.iter().map(|i| i.recycle).collect();
        // bind, select, count marked; export not
        assert_eq!(marked, vec![true, true, true, false]);
    }

    use rbat::Value;

    #[test]
    fn pure_scalars_propagate_candidacy() {
        let mut b = ProgramBuilder::new("t", 2);
        let d = b.add_months_arg(P(0), P(1)); // not recyclable
        let col = b.bind("orders", "o_orderdate");
        let sel = b.select_half_open(col, P(0), d);
        b.export("r", sel);
        let mut p = b.finish();
        RecycleMark.run(&mut p, &Catalog::new());
        assert!(!p.instrs[0].recycle, "addmonths is never monitored");
        assert!(p.instrs[1].recycle, "bind is monitored");
        assert!(
            p.instrs[2].recycle,
            "a select fed by a pure scalar of parameters IS monitorable \
             (its argument resolves to a deterministic value, Fig. 2 X25/X26)"
        );
    }

    #[test]
    fn constant_folding_then_marking_recovers_thread() {
        // After ConstFold replaces addmonths with a constant, the select's
        // arguments are all constants/candidates and the whole thread marks.
        use rmal::optimizer::{ConstFold, DeadCode};
        let cat = Catalog::new();
        let mut b = ProgramBuilder::new("t", 0);
        let d = b.add_months(Value::date("1996-07-01"), 3);
        let col = b.bind("orders", "o_orderdate");
        let sel = b.select_half_open(col, Value::date("1996-07-01"), d);
        b.export("r", sel);
        let mut p = b.finish();
        ConstFold.run(&mut p, &cat);
        DeadCode.run(&mut p, &cat);
        RecycleMark.run(&mut p, &cat);
        assert_eq!(p.marked_count(), 2, "bind + select after folding");
    }

    #[test]
    fn marks_join_threads() {
        let mut b = ProgramBuilder::new("t", 0);
        let l = b.bind("lineitem", "l_orderkey");
        let r = b.bind("orders", "o_orderkey");
        let rr = b.reverse(r);
        let j = b.join(l, rr);
        b.export("j", j);
        let mut p = b.finish();
        RecycleMark.run(&mut p, &Catalog::new());
        assert_eq!(p.marked_count(), 4);
    }
}
