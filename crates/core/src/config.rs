//! Recycler configuration: admission, eviction, resource limits, updates.

/// Admission policies deciding which executed intermediates enter the pool
/// (paper §4.2 and the adaptive refinement of §7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Keep every instruction instance the optimiser advised — the baseline
    /// that preserves entire execution threads.
    KeepAll,
    /// The CREDIT policy: each template instruction starts with `k`
    /// credits; admitting an instance costs one credit; a *local* reuse
    /// (within the admitting invocation) returns the credit immediately,
    /// a *global* reuse returns it when the reused instance is evicted.
    Credit(u32),
    /// The adaptive CREDIT policy: behaves like `Credit(k)` for the first
    /// `k` invocations of a template, after which instructions that have
    /// been reused at least once receive unlimited credits and all others
    /// are barred from the pool.
    Adaptive(u32),
}

/// Eviction policies choosing which *leaf* entries to drop under resource
/// pressure (paper §4.3). Each policy exists in a per-entry and a
/// per-memory flavour; which one runs is decided by the limit that
/// triggered eviction (entry-count limit vs memory limit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least-recently-used (computation or reuse time).
    Lru,
    /// Benefit policy (BP): evict the smallest `B(I) = Cost(I)·Weight(I)`.
    Benefit,
    /// History policy (HP): benefit aged by pool residence time,
    /// `B(I) / (t_cur − t_adm)`.
    History,
}

/// How the recycle pool is synchronised with committed updates (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Immediate column-level invalidation of affected intermediates —
    /// what the paper's implementation ships (§6.4).
    Invalidate,
    /// Delta propagation (§6.3): refresh bind/select/view/join chains with
    /// the committed insert deltas; falls back to invalidation for
    /// operators without a propagation rule and for deleting commits.
    Propagate,
}

/// Full recycler configuration.
#[derive(Debug, Clone, Copy)]
pub struct RecyclerConfig {
    /// Admission policy.
    pub admission: AdmissionPolicy,
    /// Eviction policy.
    pub eviction: EvictionPolicy,
    /// Memory budget for intermediates, in bytes (`None` = unlimited).
    pub mem_limit: Option<usize>,
    /// Maximum number of pool entries ("cache lines"; `None` = unlimited).
    pub entry_limit: Option<usize>,
    /// Enable singleton subsumption (range select / LIKE / semijoin, §5.1).
    pub subsumption: bool,
    /// Enable combined subsumption (Algorithm 2, §5.2). Requires
    /// `subsumption`.
    pub combined_subsumption: bool,
    /// Maximum number of overlapping candidates fed to the combined
    /// subsumption search (`k` in the paper's micro-benchmarks).
    pub combined_max_candidates: usize,
    /// Update synchronisation mode.
    pub update_mode: UpdateMode,
    /// Number of pool shards (rounded up to a power of two). `None` picks
    /// the next power of two ≥ 2× the core count (minimum 8); `Some(1)`
    /// reproduces the pre-shard single-lock pool for baselines.
    pub pool_shards: Option<usize>,
    /// Per-session admission budget: a *global* allowance of resident
    /// pool entries shared fairly between the active sessions. Each
    /// session may keep up to `budget / active_sessions` entries of its
    /// own resident (rebalanced as sessions open and close), plus an
    /// overflow lane: while the pool as a whole holds fewer than `budget`
    /// entries, idle slices are up for grabs. A session below its fair
    /// slice can therefore *always* admit — one flooding session can
    /// saturate its slice and the overflow, but never starve another
    /// session's admissions (`None` = no per-session budget).
    pub session_credits: Option<u64>,
}

impl Default for RecyclerConfig {
    /// The paper's baseline experimental setting: KEEPALL admission, no
    /// resource limits, singleton + combined subsumption enabled,
    /// invalidation on update.
    fn default() -> Self {
        RecyclerConfig {
            admission: AdmissionPolicy::KeepAll,
            eviction: EvictionPolicy::Lru,
            mem_limit: None,
            entry_limit: None,
            subsumption: true,
            combined_subsumption: true,
            combined_max_candidates: 16,
            update_mode: UpdateMode::Invalidate,
            pool_shards: None,
            session_credits: None,
        }
    }
}

impl RecyclerConfig {
    /// Builder-style: set the admission policy.
    pub fn admission(mut self, a: AdmissionPolicy) -> Self {
        self.admission = a;
        self
    }

    /// Builder-style: set the eviction policy.
    pub fn eviction(mut self, e: EvictionPolicy) -> Self {
        self.eviction = e;
        self
    }

    /// Builder-style: cap pool memory.
    pub fn mem_limit(mut self, bytes: usize) -> Self {
        self.mem_limit = Some(bytes);
        self
    }

    /// Builder-style: cap pool entries.
    pub fn entry_limit(mut self, n: usize) -> Self {
        self.entry_limit = Some(n);
        self
    }

    /// Builder-style: toggle subsumption.
    pub fn subsumption(mut self, on: bool) -> Self {
        self.subsumption = on;
        if !on {
            self.combined_subsumption = false;
        }
        self
    }

    /// Builder-style: toggle combined subsumption.
    pub fn combined(mut self, on: bool) -> Self {
        self.combined_subsumption = on && self.subsumption;
        self
    }

    /// Builder-style: set the update mode.
    pub fn update_mode(mut self, m: UpdateMode) -> Self {
        self.update_mode = m;
        self
    }

    /// Builder-style: set the pool shard count (rounded up to a power of
    /// two; 1 = the pre-shard single-lock layout).
    pub fn shards(mut self, n: usize) -> Self {
        self.pool_shards = Some(n.max(1));
        self
    }

    /// Builder-style: set the global per-session admission budget (fair
    /// slices of `n` resident entries over the active sessions, with an
    /// overflow lane for idle capacity).
    pub fn session_credits(mut self, n: u64) -> Self {
        self.session_credits = Some(n.max(1));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_keepall_unlimited() {
        let c = RecyclerConfig::default();
        assert_eq!(c.admission, AdmissionPolicy::KeepAll);
        assert!(c.mem_limit.is_none() && c.entry_limit.is_none());
        assert!(c.subsumption && c.combined_subsumption);
    }

    #[test]
    fn builder_chains() {
        let c = RecyclerConfig::default()
            .admission(AdmissionPolicy::Credit(3))
            .eviction(EvictionPolicy::Benefit)
            .mem_limit(1 << 20)
            .entry_limit(100);
        assert_eq!(c.admission, AdmissionPolicy::Credit(3));
        assert_eq!(c.eviction, EvictionPolicy::Benefit);
        assert_eq!(c.mem_limit, Some(1 << 20));
        assert_eq!(c.entry_limit, Some(100));
    }

    #[test]
    fn disabling_subsumption_disables_combined() {
        let c = RecyclerConfig::default().subsumption(false);
        assert!(!c.combined_subsumption);
    }

    #[test]
    fn shard_count_configurable() {
        assert_eq!(RecyclerConfig::default().pool_shards, None);
        assert_eq!(RecyclerConfig::default().shards(16).pool_shards, Some(16));
        assert_eq!(RecyclerConfig::default().shards(0).pool_shards, Some(1));
    }

    #[test]
    fn session_credits_configurable() {
        assert_eq!(RecyclerConfig::default().session_credits, None);
        let c = RecyclerConfig::default().session_credits(32);
        assert_eq!(c.session_credits, Some(32));
        assert_eq!(
            RecyclerConfig::default().session_credits(0).session_credits,
            Some(1),
            "a zero budget would deadlock every admission"
        );
    }
}
