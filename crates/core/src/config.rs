//! Recycler configuration: admission, eviction, resource limits, updates.

/// Admission policies deciding which executed intermediates enter the pool
/// (paper §4.2 and the adaptive refinement of §7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Keep every instruction instance the optimiser advised — the baseline
    /// that preserves entire execution threads.
    KeepAll,
    /// The CREDIT policy: each template instruction starts with `k`
    /// credits; admitting an instance costs one credit; a *local* reuse
    /// (within the admitting invocation) returns the credit immediately,
    /// a *global* reuse returns it when the reused instance is evicted.
    Credit(u32),
    /// The adaptive CREDIT policy: behaves like `Credit(k)` for the first
    /// `k` invocations of a template, after which instructions that have
    /// been reused at least once receive unlimited credits and all others
    /// are barred from the pool.
    Adaptive(u32),
}

/// Eviction policies choosing which *leaf* entries to drop under resource
/// pressure (paper §4.3). Each policy exists in a per-entry and a
/// per-memory flavour; which one runs is decided by the limit that
/// triggered eviction (entry-count limit vs memory limit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least-recently-used (computation or reuse time).
    Lru,
    /// Benefit policy (BP): evict the smallest `B(I) = Cost(I)·Weight(I)`.
    Benefit,
    /// History policy (HP): benefit aged by pool residence time,
    /// `B(I) / (t_cur − t_adm)`.
    History,
}

/// How the recycle pool is synchronised with committed updates (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Immediate column-level invalidation of affected intermediates —
    /// what the paper's implementation ships (§6.4).
    Invalidate,
    /// Delta propagation (§6.3): refresh bind/select/view/join chains with
    /// the committed insert deltas; falls back to invalidation for
    /// operators without a propagation rule and for deleting commits.
    Propagate,
}

/// Full recycler configuration.
#[derive(Debug, Clone, Copy)]
pub struct RecyclerConfig {
    /// Admission policy.
    pub admission: AdmissionPolicy,
    /// Eviction policy.
    pub eviction: EvictionPolicy,
    /// Memory budget for intermediates, in bytes (`None` = unlimited).
    pub mem_limit: Option<usize>,
    /// Maximum number of pool entries ("cache lines"; `None` = unlimited).
    pub entry_limit: Option<usize>,
    /// Enable singleton subsumption (range select / LIKE / semijoin, §5.1).
    pub subsumption: bool,
    /// Enable combined subsumption (Algorithm 2, §5.2). Requires
    /// `subsumption`.
    pub combined_subsumption: bool,
    /// Maximum number of overlapping candidates fed to the combined
    /// subsumption search (`k` in the paper's micro-benchmarks).
    pub combined_max_candidates: usize,
    /// Update synchronisation mode.
    pub update_mode: UpdateMode,
    /// Number of pool shards (rounded up to a power of two). `None` picks
    /// the next power of two ≥ 2× the core count (minimum 8); `Some(1)`
    /// reproduces the pre-shard single-lock pool for baselines.
    pub pool_shards: Option<usize>,
    /// Per-session admission budget: a *global* allowance of resident
    /// pool entries shared fairly between the active sessions. Each
    /// session may keep up to `budget / active_sessions` entries of its
    /// own resident (rebalanced as sessions open and close), plus an
    /// overflow lane: while the pool as a whole holds fewer than `budget`
    /// entries, idle slices are up for grabs. A session below its fair
    /// slice can therefore *always* admit — one flooding session can
    /// saturate its slice and the overflow, but never starve another
    /// session's admissions (`None` = no per-session budget).
    pub session_credits: Option<u64>,
    /// Run the background collector thread: a GC-style maintenance
    /// service that continuously drains the pool toward the low-water
    /// mark so admissions under pressure merely *signal* it instead of
    /// evicting synchronously on the query path. Requires at least one
    /// configured limit (`mem_limit` / `entry_limit`) — validated at
    /// facade build time. Off by default: without the collector the
    /// recycler behaves exactly as before (inline eviction at the cap).
    pub background_collector: bool,
    /// Low-water mark as a fraction of the configured cap(s), in `(0,
    /// 1]`: the collector drains the pool down to `ratio × cap` (bytes
    /// and entries alike) once signalled. Must be below
    /// [`Self::high_water_ratio`].
    pub low_water_ratio: f64,
    /// High-water mark as a fraction of the configured cap(s), in `(0,
    /// 1]`: admissions signal the collector when resident + in-flight
    /// demand crosses `ratio × cap`. The gap to the cap itself is the
    /// headroom admissions can consume while the collector catches up —
    /// only when the pool is *genuinely full* (the strict gate at the cap
    /// fails) does an admission fall back to inline eviction.
    pub high_water_ratio: f64,
    /// Minor collector rounds (cheap sweeps over the nursery of
    /// recently-leafed entries) per major round (a full pass over the
    /// evictable-leaf index). Minimum 1.
    pub minor_per_major: u32,
    /// Timeslice budget per collector activation, in milliseconds: once a
    /// burst of rounds has spent this much wall time the collector yields
    /// and reschedules itself, so it can never monopolise the eviction
    /// mutex against inline admitters. Minimum 1.
    pub collector_timeslice_ms: u64,
    /// Enable the compression tier: collector rounds demote cold raw
    /// entries to lightweight-compressed blobs *in place* before the
    /// evict path ever fires, so eviction becomes the last rung of the
    /// demotion ladder (raw → compressed → [spilled →] gone). A hit on
    /// a compressed entry decompresses and re-promotes to raw, recording
    /// the decompress cost. Requires the background collector (demotion
    /// is a background activity) — validated at facade build time. Off
    /// by default: without it the pool behaves exactly as before.
    pub compression: bool,
    /// Entries below this raw byte size are never demoted to the
    /// compression tier: tiny intermediates cost more per-entry codec
    /// overhead than their bytes are worth. Only meaningful with
    /// [`Self::compression`].
    pub compress_min_bytes: usize,
    /// Admission floor: executed results smaller than this many bytes
    /// are *monitored but not admitted* — for workloads of tiny BATs
    /// (SkyServer's 44 KB pool) the admission + bookkeeping overhead
    /// exceeds the time ever saved by reusing them. `0` (the default)
    /// admits everything, preserving the paper's baseline semantics.
    pub min_admit_bytes: usize,
    /// Recycle operator *state*, not just result BATs: split join, group
    /// and sort into build/probe halves, cache the build structures (hash
    /// tables, group maps, sorted runs) as typed artifacts keyed by their
    /// build-side lineage, and let the reuse-aware optimiser pass steer
    /// commutative chains toward pool-resident prefixes. Off by default:
    /// plans and pool behaviour are bit-identical to the result-only
    /// recycler then.
    pub recycle_operator_state: bool,
}

impl Default for RecyclerConfig {
    /// The paper's baseline experimental setting: KEEPALL admission, no
    /// resource limits, singleton + combined subsumption enabled,
    /// invalidation on update.
    fn default() -> Self {
        RecyclerConfig {
            admission: AdmissionPolicy::KeepAll,
            eviction: EvictionPolicy::Lru,
            mem_limit: None,
            entry_limit: None,
            subsumption: true,
            combined_subsumption: true,
            combined_max_candidates: 16,
            update_mode: UpdateMode::Invalidate,
            pool_shards: None,
            session_credits: None,
            background_collector: false,
            low_water_ratio: 0.5,
            high_water_ratio: 0.8,
            minor_per_major: 8,
            collector_timeslice_ms: 4,
            compression: false,
            compress_min_bytes: 256,
            min_admit_bytes: 0,
            recycle_operator_state: false,
        }
    }
}

impl RecyclerConfig {
    /// Builder-style: set the admission policy.
    pub fn admission(mut self, a: AdmissionPolicy) -> Self {
        self.admission = a;
        self
    }

    /// Builder-style: set the eviction policy.
    pub fn eviction(mut self, e: EvictionPolicy) -> Self {
        self.eviction = e;
        self
    }

    /// Builder-style: cap pool memory.
    pub fn mem_limit(mut self, bytes: usize) -> Self {
        self.mem_limit = Some(bytes);
        self
    }

    /// Builder-style: cap pool entries.
    pub fn entry_limit(mut self, n: usize) -> Self {
        self.entry_limit = Some(n);
        self
    }

    /// Builder-style: toggle subsumption.
    pub fn subsumption(mut self, on: bool) -> Self {
        self.subsumption = on;
        if !on {
            self.combined_subsumption = false;
        }
        self
    }

    /// Builder-style: toggle combined subsumption.
    pub fn combined(mut self, on: bool) -> Self {
        self.combined_subsumption = on && self.subsumption;
        self
    }

    /// Builder-style: set the update mode.
    pub fn update_mode(mut self, m: UpdateMode) -> Self {
        self.update_mode = m;
        self
    }

    /// Builder-style: set the pool shard count (rounded up to a power of
    /// two; 1 = the pre-shard single-lock layout).
    pub fn shards(mut self, n: usize) -> Self {
        self.pool_shards = Some(n.max(1));
        self
    }

    /// Builder-style: set the global per-session admission budget (fair
    /// slices of `n` resident entries over the active sessions, with an
    /// overflow lane for idle capacity).
    pub fn session_credits(mut self, n: u64) -> Self {
        self.session_credits = Some(n.max(1));
        self
    }

    /// Builder-style: enable the background collector thread (see
    /// [`Self::background_collector`]). Pair with a `mem_limit` /
    /// `entry_limit` — a collector with nothing to drain toward is a
    /// configuration error.
    pub fn collector(mut self, on: bool) -> Self {
        self.background_collector = on;
        self
    }

    /// Builder-style: set the collector's low/high water marks as
    /// fractions of the configured cap(s). Validated at facade build time:
    /// both in `(0, 1]` and `low < high`.
    pub fn water_marks(mut self, low: f64, high: f64) -> Self {
        self.low_water_ratio = low;
        self.high_water_ratio = high;
        self
    }

    /// Builder-style: minor collector rounds per major round (≥ 1).
    pub fn minor_per_major(mut self, n: u32) -> Self {
        self.minor_per_major = n;
        self
    }

    /// Builder-style: the collector's per-activation timeslice budget in
    /// milliseconds (≥ 1).
    pub fn collector_timeslice_ms(mut self, ms: u64) -> Self {
        self.collector_timeslice_ms = ms;
        self
    }

    /// Builder-style: enable the compression tier (see
    /// [`Self::compression`]). Pair with the background collector and a
    /// resource cap — demotion is driven by collector rounds under
    /// pressure.
    pub fn compression(mut self, on: bool) -> Self {
        self.compression = on;
        self
    }

    /// Builder-style: the smallest raw entry worth compressing (see
    /// [`Self::compress_min_bytes`]).
    pub fn compress_min_bytes(mut self, bytes: usize) -> Self {
        self.compress_min_bytes = bytes;
        self
    }

    /// Builder-style: toggle operator-state recycling (see
    /// [`Self::recycle_operator_state`]).
    pub fn recycle_operator_state(mut self, on: bool) -> Self {
        self.recycle_operator_state = on;
        self
    }

    /// Builder-style: the admission floor in bytes (see
    /// [`Self::min_admit_bytes`]). `0` admits everything.
    pub fn min_admit_bytes(mut self, bytes: usize) -> Self {
        self.min_admit_bytes = bytes;
        self
    }

    /// Validate the configuration, returning a human-readable description
    /// of the first violation. Checked by the facade at build time
    /// (`DatabaseBuilder::try_build` maps this into a typed
    /// `recycling::Error::Config`); the core constructors trust their
    /// input, so embedders driving [`crate::SharedRecycler`] directly
    /// should call this themselves.
    pub fn validate(&self) -> Result<(), String> {
        let ratio_ok = |r: f64| r > 0.0 && r <= 1.0 && r.is_finite();
        if !ratio_ok(self.low_water_ratio) {
            return Err(format!(
                "low_water_ratio must be in (0, 1], got {}",
                self.low_water_ratio
            ));
        }
        if !ratio_ok(self.high_water_ratio) {
            return Err(format!(
                "high_water_ratio must be in (0, 1], got {}",
                self.high_water_ratio
            ));
        }
        if self.low_water_ratio >= self.high_water_ratio {
            return Err(format!(
                "low water mark must sit below the high water mark, got low {} ≥ high {}",
                self.low_water_ratio, self.high_water_ratio
            ));
        }
        if self.background_collector {
            if self.mem_limit.is_none() && self.entry_limit.is_none() {
                return Err(
                    "background collector requires a mem_limit or entry_limit to drain toward"
                        .to_string(),
                );
            }
            if self.minor_per_major == 0 {
                return Err("minor_per_major must be at least 1".to_string());
            }
            if self.collector_timeslice_ms == 0 {
                return Err("collector_timeslice_ms must be at least 1".to_string());
            }
        }
        if self.compression {
            if !self.background_collector {
                return Err(
                    "the compression tier requires the background collector (demotion \
                     is a background activity)"
                        .to_string(),
                );
            }
            if self.mem_limit.is_none() && self.entry_limit.is_none() {
                return Err(
                    "the compression tier requires a mem_limit or entry_limit — without \
                     pressure there is nothing to demote for"
                        .to_string(),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_keepall_unlimited() {
        let c = RecyclerConfig::default();
        assert_eq!(c.admission, AdmissionPolicy::KeepAll);
        assert!(c.mem_limit.is_none() && c.entry_limit.is_none());
        assert!(c.subsumption && c.combined_subsumption);
    }

    #[test]
    fn builder_chains() {
        let c = RecyclerConfig::default()
            .admission(AdmissionPolicy::Credit(3))
            .eviction(EvictionPolicy::Benefit)
            .mem_limit(1 << 20)
            .entry_limit(100);
        assert_eq!(c.admission, AdmissionPolicy::Credit(3));
        assert_eq!(c.eviction, EvictionPolicy::Benefit);
        assert_eq!(c.mem_limit, Some(1 << 20));
        assert_eq!(c.entry_limit, Some(100));
    }

    #[test]
    fn disabling_subsumption_disables_combined() {
        let c = RecyclerConfig::default().subsumption(false);
        assert!(!c.combined_subsumption);
    }

    #[test]
    fn shard_count_configurable() {
        assert_eq!(RecyclerConfig::default().pool_shards, None);
        assert_eq!(RecyclerConfig::default().shards(16).pool_shards, Some(16));
        assert_eq!(RecyclerConfig::default().shards(0).pool_shards, Some(1));
    }

    #[test]
    fn collector_defaults_off_and_validates() {
        let c = RecyclerConfig::default();
        assert!(!c.background_collector);
        assert!(c.validate().is_ok(), "defaults must validate");
        let on = RecyclerConfig::default().mem_limit(1 << 20).collector(true);
        assert!(on.validate().is_ok());
        assert!((on.low_water_ratio - 0.5).abs() < 1e-12);
        assert!((on.high_water_ratio - 0.8).abs() < 1e-12);
    }

    #[test]
    fn water_mark_validation_rejects_bad_configs() {
        let base = RecyclerConfig::default().mem_limit(1 << 20).collector(true);
        for (low, high) in [
            (0.0, 0.8),  // low out of (0,1]
            (0.5, 1.5),  // high above the cap
            (0.8, 0.5),  // inverted
            (0.7, 0.7),  // degenerate band
            (-0.1, 0.8), // negative
            (f64::NAN, 0.8),
        ] {
            assert!(
                base.water_marks(low, high).validate().is_err(),
                "({low}, {high}) must be rejected"
            );
        }
        assert!(
            RecyclerConfig::default()
                .collector(true)
                .validate()
                .is_err(),
            "a collector without limits has nothing to drain toward"
        );
        assert!(base.minor_per_major(0).validate().is_err());
        assert!(base.collector_timeslice_ms(0).validate().is_err());
    }

    #[test]
    fn tiering_knobs_default_off_and_validate() {
        let c = RecyclerConfig::default();
        assert!(!c.compression);
        assert_eq!(c.compress_min_bytes, 256);
        assert_eq!(c.min_admit_bytes, 0);
        // compression without a collector (or without a cap) is an error
        assert!(RecyclerConfig::default()
            .compression(true)
            .validate()
            .is_err());
        assert!(RecyclerConfig::default()
            .mem_limit(1 << 20)
            .compression(true)
            .validate()
            .is_err());
        let ok = RecyclerConfig::default()
            .mem_limit(1 << 20)
            .collector(true)
            .compression(true)
            .compress_min_bytes(128)
            .min_admit_bytes(64);
        assert!(ok.validate().is_ok());
        assert_eq!(ok.compress_min_bytes, 128);
        assert_eq!(ok.min_admit_bytes, 64);
    }

    #[test]
    fn session_credits_configurable() {
        assert_eq!(RecyclerConfig::default().session_credits, None);
        let c = RecyclerConfig::default().session_credits(32);
        assert_eq!(c.session_credits, Some(32));
        assert_eq!(
            RecyclerConfig::default().session_credits(0).session_credits,
            Some(1),
            "a zero budget would deadlock every admission"
        );
    }
}
