//! Property tests for the tier codecs: `decode ∘ encode` must be the
//! identity for every codec the sampler can choose, over every column
//! type the engine stores — and the chosen encoding must never inflate
//! meaningfully past verbatim, because the demotion rung trusts
//! `byte_size()` when it decides whether compressing an entry is worth
//! anything at all.

use proptest::prelude::*;
use rbat::{Bat, Bitmap, Column, Value};
use recycler::tier::codec::{decode_column_standalone, encode_column_standalone};
use recycler::tier::CompressedBat;

/// Per-column encoding overhead the "never inflates" bound tolerates:
/// blob version + type tag + codec tag + row count + length words.
const HEADER_SLACK: usize = 32;

fn assert_roundtrip(col: &Column) {
    let (bytes, codec) = encode_column_standalone(col);
    let rt = decode_column_standalone(&bytes)
        .unwrap_or_else(|e| panic!("decode failed for {codec:?}: {e}"));
    assert_eq!(col.len(), rt.len(), "length changed under {codec:?}");
    for i in 0..col.len() {
        match (col.value(i), rt.value(i)) {
            // NaN-safe: floats must survive bit-exactly, not just ==
            (Value::Float(a), Value::Float(b)) => {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} under {codec:?}")
            }
            (a, b) => assert_eq!(a, b, "row {i} under {codec:?}"),
        }
    }
}

/// The natural (verbatim) payload width of a column, in bytes — what
/// storing it uncompressed costs, excluding headers.
fn verbatim_payload(col: &Column) -> usize {
    (0..col.len())
        .map(|i| match col.value(i) {
            Value::Str(s) => 4 + s.len(),
            Value::Bool(_) => 1,
            Value::Date(_) => 4,
            _ => 8,
        })
        .sum::<usize>()
        + if col.has_nulls() {
            col.len() / 8 + 8
        } else {
            0
        }
}

fn assert_never_inflates(col: &Column) {
    let (bytes, codec) = encode_column_standalone(col);
    let bound = verbatim_payload(col) + HEADER_SLACK;
    assert!(
        bytes.len() <= bound,
        "{codec:?} inflated {} rows to {} bytes (verbatim bound {})",
        col.len(),
        bytes.len(),
        bound
    );
}

/// Reshape raw random ints into the distributions that trigger each
/// codec: 0 = as-drawn (wide, verbatim territory), 1 = all-equal (RLE),
/// 2 = tiny alphabet (dictionary), 3 = narrow range over a huge base
/// (frame of reference), 4 = runs (RLE with multiple values).
fn shape_ints(mode: usize, raw: &[i64]) -> Vec<i64> {
    match mode {
        1 => raw
            .iter()
            .map(|_| raw.first().copied().unwrap_or(7))
            .collect(),
        2 => raw
            .iter()
            .map(|v| [7, -9, 1 << 40][(v.unsigned_abs() % 3) as usize])
            .collect(),
        3 => raw
            .iter()
            .map(|v| 1_000_000_000 + (v.rem_euclid(100)))
            .collect(),
        4 => raw
            .iter()
            .enumerate()
            .map(|(i, _)| (i / 16) as i64)
            .collect(),
        _ => raw.to_vec(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn int_columns_roundtrip(mode in 0usize..5, raw in prop::collection::vec(i64::MIN..i64::MAX, 0..300)) {
        let col = Column::from_ints(shape_ints(mode, &raw));
        assert_roundtrip(&col);
        assert_never_inflates(&col);
    }

    #[test]
    fn oid_columns_roundtrip(mode in 0usize..3, start in 0u64..1_000_000, raw in prop::collection::vec(0u64..u64::MAX, 0..300)) {
        let col = match mode {
            // dense ranges are the BAT head's natural shape
            0 => Column::dense(start, raw.len()),
            1 => Column::from_oids(raw.iter().map(|v| start + v % 64).collect()),
            _ => Column::from_oids(raw.clone()),
        };
        assert_roundtrip(&col);
        assert_never_inflates(&col);
    }

    #[test]
    fn date_columns_roundtrip(mode in 0usize..3, raw in prop::collection::vec(-100_000i32..100_000, 0..300)) {
        let shaped: Vec<i32> = match mode {
            1 => raw.iter().map(|_| raw.first().copied().unwrap_or(18262)).collect(),
            2 => raw.iter().map(|v| 18000 + v.rem_euclid(365)).collect(),
            _ => raw.clone(),
        };
        let col = Column::from_dates(shaped);
        assert_roundtrip(&col);
        assert_never_inflates(&col);
    }

    #[test]
    fn float_columns_roundtrip(mode in 0usize..3, raw in prop::collection::vec(-1.0e300f64..1.0e300, 0..300)) {
        let shaped: Vec<f64> = match mode {
            1 => raw.iter().map(|_| raw.first().copied().unwrap_or(0.25)).collect(),
            // NaN, signed zero and subnormals must survive bit-exactly
            2 => raw.iter().enumerate()
                .map(|(i, v)| [f64::NAN, -0.0, f64::MIN_POSITIVE / 2.0, *v][i % 4])
                .collect(),
            _ => raw.clone(),
        };
        let col = Column::from_floats(shaped);
        assert_roundtrip(&col);
        assert_never_inflates(&col);
    }

    #[test]
    fn bool_columns_roundtrip(mode in 0usize..3, raw in prop::collection::vec(0u8..2, 0..300)) {
        let shaped: Vec<bool> = match mode {
            1 => raw.iter().map(|_| true).collect(),
            _ => raw.iter().map(|v| *v == 1).collect(),
        };
        let col = Column::from_bools(shaped);
        assert_roundtrip(&col);
        assert_never_inflates(&col);
    }

    #[test]
    fn str_columns_roundtrip(mode in 0usize..3, raw in prop::collection::vec(0usize..6, 0..200)) {
        const WORDS: [&str; 6] = ["", "low", "high", "medium", "N", "the same long-ish payload"];
        let shaped: Vec<&str> = match mode {
            1 => raw.iter().map(|_| "constant").collect(),
            2 => raw.iter().map(|v| WORDS[v % 2]).collect(),
            _ => raw.iter().map(|v| WORDS[*v]).collect(),
        };
        let col = Column::from_strs(shaped);
        assert_roundtrip(&col);
        assert_never_inflates(&col);
    }

    #[test]
    fn validity_masks_roundtrip(raw in prop::collection::vec((i64::MIN..i64::MAX, 0u8..4), 1..200)) {
        // every 4th-ish row Nil: codecs must carry the mask, and Nil rows
        // must come back Nil regardless of the stored payload
        let vals: Vec<i64> = raw.iter().map(|(v, _)| *v).collect();
        let mask: Vec<bool> = raw.iter().map(|(_, m)| *m != 0).collect();
        let col = Column::from_ints(vals).with_validity(Bitmap::from_bools(&mask));
        assert_roundtrip(&col);
        assert_never_inflates(&col);
    }

    #[test]
    fn whole_bats_roundtrip_through_the_blob(mode in 0usize..5, raw in prop::collection::vec(i64::MIN..i64::MAX, 0..300)) {
        // the demotion path works on whole BATs: identity must hold
        // through CompressedBat and its wire form (the spill record)
        let bat = Bat::from_tail(Column::from_ints(shape_ints(mode, &raw)));
        let blob = CompressedBat::compress(&bat);
        let back = CompressedBat::from_bytes(blob.as_bytes().to_vec())
            .decompress()
            .expect("wire-form blob decodes");
        assert_eq!(bat.id(), back.id(), "BatId must survive demotion");
        assert_eq!(bat.len(), back.len());
        for i in 0..bat.len() {
            assert_eq!(bat.head().value(i), back.head().value(i), "head row {i}");
            assert_eq!(bat.tail().value(i), back.tail().value(i), "tail row {i}");
        }
    }
}

/// The boundary shapes the random draws only hit probabilistically,
/// pinned explicitly: empty and single-value columns of every type.
#[test]
fn empty_and_single_value_columns_roundtrip() {
    let empties = [
        Column::from_ints(vec![]),
        Column::from_oids(vec![]),
        Column::from_dates(vec![]),
        Column::from_floats(vec![]),
        Column::from_bools(vec![]),
        Column::from_strs([] as [&str; 0]),
        Column::dense(42, 0),
    ];
    let singles = [
        Column::from_ints(vec![i64::MIN]),
        Column::from_oids(vec![u64::MAX]),
        Column::from_dates(vec![0]),
        Column::from_floats(vec![f64::NAN]),
        Column::from_bools(vec![false]),
        Column::from_strs([""]),
        Column::dense(u64::MAX - 1, 1),
    ];
    for col in empties.iter().chain(singles.iter()) {
        assert_roundtrip(col);
        assert_never_inflates(col);
    }
}
