//! Property tests for operator-state artifacts (the PR-10 tentpole):
//!
//! 1. **Probe identity** — reusing a recycled build structure (join hash
//!    table, group map, sorted run) must produce *bit-identical* results
//!    to building it fresh, over random typed columns including NaN
//!    floats and validity (NULL) masks. The recycler is allowed to skip
//!    work, never to change an answer.
//! 2. **Invalidation** — a commit against the build side's base table
//!    must drop every dependent artifact: no stale build structure may
//!    serve across `Sig::versioned` epochs.

use proptest::prelude::*;
use rbat::ops::{
    group, group_build, group_probe, join, join_build, join_probe, sort, sort_build, sort_probe,
    topn,
};
use rbat::{Bat, Bitmap, Catalog, Column, LogicalType, Props, TableBuilder, Value};
use recycler::{Recycler, RecyclerConfig};
use rmal::{Engine, ProgramBuilder, P};

/// Bit-exact BAT equality: lengths, heads, tails — floats compared by
/// bit pattern so NaN payloads count, and validity masks must agree.
fn assert_bats_identical(a: &Bat, b: &Bat, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for i in 0..a.len() {
        let (ha, hb) = (a.head().value(i), b.head().value(i));
        assert_eq!(ha, hb, "{what}: head row {i}");
        match (a.tail().value(i), b.tail().value(i)) {
            (Value::Float(x), Value::Float(y)) => {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{what}: tail row {i} (float bits)"
                )
            }
            (x, y) => assert_eq!(x, y, "{what}: tail row {i}"),
        }
    }
}

/// An int column with a validity mask punched by `null_every`.
fn int_col(raw: &[i64], null_every: usize) -> Column {
    let col = Column::from_ints(raw.to_vec());
    if null_every == 0 {
        return col;
    }
    let mut bm = Bitmap::new(raw.len(), true);
    for i in (0..raw.len()).step_by(null_every) {
        bm.set(i, false);
    }
    col.with_validity(bm)
}

/// A float column where `mode` selects plain, NaN-studded, or nulled
/// shapes — the payloads the identity property must not normalise away.
fn float_col(raw: &[f64], mode: usize) -> Column {
    match mode {
        1 => Column::from_floats(
            raw.iter()
                .enumerate()
                .map(|(i, &v)| if i % 5 == 0 { f64::NAN } else { v })
                .collect(),
        ),
        2 => {
            let mut bm = Bitmap::new(raw.len(), true);
            for i in (0..raw.len()).step_by(4) {
                bm.set(i, false);
            }
            Column::from_floats(raw.to_vec()).with_validity(bm)
        }
        _ => Column::from_floats(raw.to_vec()),
    }
}

fn oid_bat(tail: Column) -> Bat {
    let n = tail.len();
    Bat::new(Column::dense(0, n), tail, Props::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Joining through a recycled hash table ≡ joining cold, for int key
    /// columns with NULL punches on either side.
    #[test]
    fn recycled_join_build_probe_identity(
        lraw in prop::collection::vec(-50i64..50, 1..120),
        rraw in prop::collection::vec(-50i64..50, 1..120),
        lnulls in 0usize..4,
        rnulls in 0usize..4,
    ) {
        // l: head oids, tail join keys; r: head join keys, tail payload
        let l = oid_bat(int_col(&lraw, lnulls * 3));
        let r = Bat::new(
            int_col(&rraw, rnulls * 3),
            Column::from_ints((0..rraw.len() as i64).collect()),
            Props::default(),
        );
        let cold = join(&l, &r).unwrap();
        let build = join_build(&r).unwrap();
        let first = join_probe(&l, &r, &build).unwrap();
        let again = join_probe(&l, &r, &build).unwrap();
        assert_bats_identical(&cold, &first, "join fresh-vs-probe");
        assert_bats_identical(&cold, &again, "join fresh-vs-reprobe");
    }

    /// Grouping through a recycled group map ≡ grouping cold, for float
    /// tails carrying NaNs and validity masks.
    #[test]
    fn recycled_group_map_identity(
        raw in prop::collection::vec(-8f64..8.0, 1..150),
        mode in 0usize..3,
    ) {
        let b = oid_bat(float_col(&raw, mode));
        let cold = group(&b).unwrap();
        let map = group_build(&b).unwrap();
        let first = group_probe(&b, &map).unwrap();
        let again = group_probe(&b, &map).unwrap();
        assert_bats_identical(&cold, &first, "group fresh-vs-probe");
        assert_bats_identical(&cold, &again, "group fresh-vs-reprobe");
    }

    /// Sorting through a recycled run ≡ sorting cold — and a topN served
    /// from the same run ≡ a cold topN (the run is shared between the
    /// two ops), in both directions, under NaN/NULL shapes.
    #[test]
    fn recycled_sorted_run_identity(
        raw in prop::collection::vec(-1000f64..1000.0, 1..150),
        mode in 0usize..3,
        ascv in 0usize..2,
        n in 0usize..40,
    ) {
        let asc = ascv == 1;
        let b = oid_bat(float_col(&raw, mode));
        let cold = sort(&b, asc).unwrap();
        let run = sort_build(&b, asc).unwrap();
        let first = sort_probe(&b, &run).unwrap();
        assert_bats_identical(&cold, &first, "sort fresh-vs-probe");
        let cold_top = topn(&b, n, asc).unwrap();
        let reused = sort_probe(&b, &run).unwrap();
        let reused_top = reused.slice(0, n.min(reused.len()));
        assert_bats_identical(&cold_top, &reused_top, "topn from recycled run");
    }
}

// ----- engine-level: artifacts die with their epoch ---------------------

fn catalog(rows: &[(i64, i64)]) -> Catalog {
    let mut cat = Catalog::new();
    let mut tb = TableBuilder::new("t")
        .column("x", LogicalType::Int)
        .column("y", LogicalType::Int);
    for (x, y) in rows {
        tb.push_row(&[Value::Int(*x), Value::Int(*y)]);
    }
    cat.add_table(tb.finish());
    cat
}

fn join_template() -> rmal::Program {
    let mut b = ProgramBuilder::new("probe", 2);
    let x = b.bind("t", "x");
    let y = b.bind("t", "y");
    let sel = b.select_closed(x, P(0), P(1));
    let j = b.join(sel, y);
    let g = b.group(j);
    let n = b.count(g);
    b.export("n", n);
    b.finish()
}

fn engine(cat: Catalog, operator_state: bool) -> Engine<Recycler> {
    let config = RecyclerConfig::default().recycle_operator_state(operator_state);
    let mut e = Engine::with_hook(cat, Recycler::new(config));
    e.add_pass(Box::new(recycler::RecycleMark));
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A commit against the build side's table drops every dependent
    /// artifact, and the post-commit answer matches a cold engine over
    /// the updated data — no stale reuse across `Sig::versioned` epochs.
    #[test]
    fn commit_drops_dependent_artifacts(
        rows in prop::collection::vec((0i64..40, 0i64..40), 8..60),
        extra in prop::collection::vec((0i64..40, 0i64..40), 1..12),
        lo in 0i64..20,
        span in 1i64..20,
    ) {
        let params = [Value::Int(lo), Value::Int(lo + span)];
        let mut e = engine(catalog(&rows), true);
        let mut t = join_template();
        e.optimize(&mut t);
        e.run(&t, &params).unwrap();
        prop_assert!(e.hook.stats().artifact_admissions > 0, "storm setup must admit artifacts");
        prop_assert!(e.hook.pool().artifact_bytes() > 0);

        // commit DML against t: every artifact descends from t's columns
        let inserts: Vec<rbat::delta::Row> = extra
            .iter()
            .map(|(x, y)| vec![Value::Int(*x), Value::Int(*y)])
            .collect();
        e.update("t", inserts, vec![]).unwrap();
        // commit must drop every dependent artifact
        prop_assert_eq!(e.hook.pool().artifact_bytes(), 0);
        e.hook.pool().check_invariants().unwrap();

        // the post-commit run must agree with a cold engine on the
        // updated catalog — a stale hash table would disagree
        let warm = e.run(&t, &params).unwrap();
        let mut all = rows.clone();
        all.extend(extra.iter().copied());
        let mut c = engine(catalog(&all), false);
        let mut tc = join_template();
        c.optimize(&mut tc);
        let cold = c.run(&tc, &params).unwrap();
        prop_assert_eq!(warm.export("n"), cold.export("n"));
    }
}
