//! The TCP server: a bounded worker pool mapping connections onto
//! [`Database::session`] handles.

use std::collections::VecDeque;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use recycling::{Database, Session, Update};

use crate::protocol::{
    displayable, encode_response, read_frame, write_frame, ProtoError, QueryResult, Request,
    Response,
};

/// Serving limits: `max_sessions` concurrently served connections (the
/// worker pool size — each holds one database session) and a `backlog` of
/// accepted-but-waiting connections. A connection arriving beyond
/// `max_sessions + backlog` is turned away with a [`Response::Busy`]
/// frame — connection-level admission control: queue up to the backlog,
/// reject beyond it.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads = concurrently served connections = open sessions.
    pub max_sessions: usize,
    /// Accepted connections allowed to wait for a free worker.
    pub backlog: usize,
    /// Per-connection socket read timeout — the slow-loris guard. A peer
    /// that opens a connection and then trickles (or stops sending)
    /// occupies a worker until this expires, at which point the worker
    /// sends a typed `Error` frame and hangs up. `None` disables the
    /// guard (workers then block indefinitely on idle connections, as
    /// before).
    pub read_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_sessions: 8,
            backlog: 16,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Degraded-mode observability: counters for the faults the server
/// absorbs instead of dying. Exposed via [`Server::counters`] and over
/// the wire in the `Stats` response (`server_*` keys).
#[derive(Debug, Default)]
pub struct ServeCounters {
    worker_panics: AtomicU64,
    accept_errors: AtomicU64,
    read_timeouts: AtomicU64,
}

impl ServeCounters {
    /// Requests whose handler panicked; each produced an `Error` frame on
    /// a connection that kept serving (the panic was contained, the
    /// worker survived).
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Transient `accept()` failures absorbed by the accept loop's
    /// backoff (fd exhaustion, aborted handshakes) — the loop slept and
    /// retried instead of exiting.
    pub fn accept_errors(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    /// Connections closed because the socket read deadline expired
    /// (slow-loris guard, `ServerConfig::read_timeout`).
    pub fn read_timeouts(&self) -> u64 {
        self.read_timeouts.load(Ordering::Relaxed)
    }
}

struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl ConnQueue {
    fn pop(&self, running: &AtomicBool) -> Option<TcpStream> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(conn) = q.pop_front() {
                return Some(conn);
            }
            if !running.load(Ordering::Relaxed) {
                return None;
            }
            q = self.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A running TCP front-end over one [`Database`]. Start with
/// [`Server::start`], stop with [`Server::shutdown`] (drop leaks the
/// threads until process exit — fine for a real server, call `shutdown`
/// in tests).
pub struct Server {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    conns: Arc<ConnQueue>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// One slot per worker holding a clone of the connection it is
    /// currently serving. `shutdown` severs these sockets so a worker
    /// blocked in `read_frame` on an idle-but-open connection wakes up
    /// and exits instead of deadlocking the join.
    live: Arc<Vec<Mutex<Option<TcpStream>>>>,
    rejected: Arc<AtomicU64>,
    counters: Arc<ServeCounters>,
    /// Raised by [`Self::shutdown_graceful`]: workers finish the request
    /// in flight, answer it, then close their connection instead of
    /// reading the next frame.
    draining: Arc<AtomicBool>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// the accept loop plus `config.max_sessions` worker threads. Each
    /// served connection gets its own [`Database::session`] for its whole
    /// lifetime, so the per-session credit slices see one session per
    /// client connection.
    pub fn start(db: Database, addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let conns = Arc::new(ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        let rejected = Arc::new(AtomicU64::new(0));
        let counters = Arc::new(ServeCounters::default());
        let draining = Arc::new(AtomicBool::new(false));

        let live: Arc<Vec<Mutex<Option<TcpStream>>>> = Arc::new(
            (0..config.max_sessions.max(1))
                .map(|_| Mutex::new(None))
                .collect(),
        );
        let workers: Vec<JoinHandle<()>> = (0..config.max_sessions.max(1))
            .map(|slot| {
                let db = db.clone();
                let running = Arc::clone(&running);
                let conns = Arc::clone(&conns);
                let live = Arc::clone(&live);
                let counters = Arc::clone(&counters);
                let draining = Arc::clone(&draining);
                let read_timeout = config.read_timeout;
                std::thread::spawn(move || {
                    while let Some(conn) = conns.pop(&running) {
                        *live[slot].lock().unwrap_or_else(PoisonError::into_inner) =
                            conn.try_clone().ok();
                        // Re-check after registering: shutdown stores the
                        // flag and then severs registered slots under the
                        // same mutex, so either it sees this registration
                        // (and severs the socket) or this load sees the
                        // flag — a queued connection popped mid-shutdown
                        // can never strand the worker in a blocking read.
                        if running.load(Ordering::Relaxed) {
                            // Belt-and-braces: per-request panics are
                            // already contained inside serve_connection;
                            // this outer guard means even a panic in the
                            // framing/session layer costs one connection,
                            // never the worker thread.
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                serve_connection(&db, conn, read_timeout, &counters, &draining);
                            }));
                            if r.is_err() {
                                counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        *live[slot].lock().unwrap_or_else(PoisonError::into_inner) = None;
                    }
                })
            })
            .collect();

        let accept = {
            let running = Arc::clone(&running);
            let conns = Arc::clone(&conns);
            let rejected = Arc::clone(&rejected);
            let counters = Arc::clone(&counters);
            // at least one waiter, or an empty instantaneous queue (a
            // popped-but-in-service connection) would reject everyone
            let backlog = config.backlog.max(1);
            let reject_writers: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
            std::thread::spawn(move || {
                let mut backoff = ACCEPT_BACKOFF_START;
                for stream in listener.incoming() {
                    if !running.load(Ordering::Relaxed) {
                        break;
                    }
                    let stream = match stream {
                        Ok(s) => {
                            backoff = ACCEPT_BACKOFF_START;
                            s
                        }
                        Err(_) => {
                            // Transient accept failures (EMFILE, aborted
                            // handshakes) must not spin the loop hot or
                            // kill it: count, back off, try again.
                            counters.accept_errors.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(ACCEPT_BACKOFF_CAP);
                            continue;
                        }
                    };
                    let mut q = conns.queue.lock().unwrap_or_else(PoisonError::into_inner);
                    if q.len() >= backlog {
                        drop(q);
                        rejected.fetch_add(1, Ordering::Relaxed);
                        reject_busy(stream, backlog, &reject_writers);
                    } else {
                        q.push_back(stream);
                        drop(q);
                        conns.ready.notify_one();
                    }
                }
            })
        };

        Ok(Server {
            addr,
            running,
            conns,
            accept: Some(accept),
            workers,
            live,
            rejected,
            counters,
            draining,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections turned away by admission control so far.
    pub fn rejected_connections(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// The server's degraded-mode counters (panics contained, accept
    /// errors absorbed, read timeouts enforced).
    pub fn counters(&self) -> &ServeCounters {
        &self.counters
    }

    /// Stop accepting, sever every in-service connection, wake every
    /// worker and join all threads. Clients with a request in flight see
    /// their connection drop; a worker blocked in `read_frame` on an
    /// idle-but-open connection is woken by the socket shutdown rather
    /// than deadlocking the join.
    pub fn shutdown(mut self) {
        self.running.store(false, Ordering::Relaxed);
        // unblock the accept loop's blocking `incoming()`
        let _ = TcpStream::connect(self.addr);
        self.conns.ready.notify_all();
        for slot in self.live.iter() {
            if let Some(conn) = slot.lock().unwrap_or_else(PoisonError::into_inner).as_ref() {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Graceful variant of [`Self::shutdown`]: stop accepting, let every
    /// in-flight request finish and be answered, then close. Workers see
    /// the draining flag after writing each response and hang up instead
    /// of reading the next frame; connections idle in a blocking read
    /// are given up to `grace` to come around (their next request still
    /// gets served), after which the remaining sockets are severed as in
    /// `shutdown`. Queued-but-unserved connections are dropped — they
    /// were never answered, so the client sees a clean close, not a torn
    /// reply.
    pub fn shutdown_graceful(self, grace: Duration) {
        self.draining.store(true, Ordering::Relaxed);
        // Stop accepting immediately (the connect() unblocks the accept
        // loop's blocking `incoming()`).
        self.running.store(false, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        self.conns.ready.notify_all();
        let deadline = Instant::now() + grace;
        while Instant::now() < deadline {
            let any_live = self.live.iter().any(|slot| {
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .is_some()
            });
            if !any_live {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.shutdown();
    }
}

/// First sleep after a failed `accept()`; doubles per consecutive
/// failure up to [`ACCEPT_BACKOFF_CAP`], resets on success.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(5);
/// Ceiling for the accept-loop error backoff.
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(250);

/// How long a Busy rejection may spend in any one write to the turned-
/// away client before the socket is abandoned. Rejected peers are by
/// definition the ones we owe the least; a slow or hostile one must
/// never cost more than a few of these bounds (the frame is one small
/// write plus a flush).
const REJECT_WRITE_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(250);

/// Cap on concurrently live rejection-writer threads. Beyond it a flood
/// of turned-away connections is simply dropped without the courtesy
/// Busy frame (the peer sees the close) — unbounded spawning would let a
/// connection flood exhaust threads, and a failed spawn must never take
/// down the accept loop.
const MAX_REJECT_WRITERS: usize = 64;

/// Turn a connection away with a [`Response::Busy`] frame — **off** the
/// accept thread. The write used to run inline in the accept loop with no
/// timeout, so a single client that stopped reading (or a peer with a
/// zero receive window) could stall every new connection behind it.
/// Rejections now run on short-lived detached threads with a write
/// timeout: the accept loop goes straight back to `accept()` whatever
/// the peer does. The writer population is bounded by
/// `MAX_REJECT_WRITERS` and spawn failure degrades to dropping the
/// connection (never a panic on the accept thread).
fn reject_busy(stream: TcpStream, backlog: usize, writers: &Arc<AtomicU64>) {
    if writers.fetch_add(1, Ordering::Relaxed) >= MAX_REJECT_WRITERS as u64 {
        // flood: close without the courtesy frame rather than hoard
        // threads on peers we are turning away anyway
        writers.fetch_sub(1, Ordering::Relaxed);
        return;
    }
    let in_thread = Arc::clone(writers);
    let spawned = std::thread::Builder::new()
        .name("rcy-reject".into())
        .spawn(move || {
            let _ = stream.set_write_timeout(Some(REJECT_WRITE_TIMEOUT));
            let resp = Response::Busy {
                reason: format!("server at capacity (backlog {backlog})"),
            };
            if let Ok(payload) = encode_response(&resp) {
                let mut w = BufWriter::new(stream);
                let _ = write_frame(&mut w, &payload);
            }
            in_thread.fetch_sub(1, Ordering::Relaxed);
        });
    if spawned.is_err() {
        // the closure (and its stream) was dropped unrun: the peer sees
        // a close, the accept loop keeps running
        writers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Serve one connection until `Close`, EOF, a protocol error or a read
/// timeout: a frame loop over one dedicated [`Session`]. A request whose
/// handler panics is answered with a typed `Error` frame and the
/// connection keeps serving — one bad request costs one reply, not a
/// worker.
fn serve_connection(
    db: &Database,
    stream: TcpStream,
    read_timeout: Option<Duration>,
    counters: &ServeCounters,
    draining: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(read_timeout);
    let mut session = db.session();
    let reader = stream.try_clone();
    let Ok(mut reader) = reader else { return };
    let mut writer = BufWriter::new(stream);
    loop {
        #[cfg(feature = "failpoints")]
        if recycling::fault::fire("wire.read").is_some() {
            // a scripted Io (or Deny) fault models the transport dying
            // mid-read: report and hang up, exactly like a real one
            respond(
                &mut writer,
                &protocol_error(&ProtoError::Io("injected fault".into())),
            );
            return;
        }
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF between frames
            Err(ProtoError::Timeout) => {
                // slow-loris guard: the peer sat silent (or trickled)
                // past the read deadline — free the worker with a typed
                // goodbye
                counters.read_timeouts.fetch_add(1, Ordering::Relaxed);
                respond(
                    &mut writer,
                    &Response::Error {
                        message: "read timeout: no complete frame within the deadline".into(),
                    },
                );
                return;
            }
            Err(e) => {
                // malformed/truncated frame: report and hang up — framing
                // is lost, recovery is a reconnect
                respond(&mut writer, &protocol_error(&e));
                return;
            }
        };
        let request = match crate::protocol::decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                respond(&mut writer, &protocol_error(&e));
                return;
            }
        };
        let closing = matches!(request, Request::Close);
        let response = match catch_unwind(AssertUnwindSafe(|| {
            handle(db, &mut session, request, counters)
        })) {
            Ok(r) => r,
            Err(_) => {
                // Panic containment: the recycler's shard quarantine (see
                // `recycler::RecyclePool::repair`) guarantees a panicked
                // probe or admission degrades to misses rather than
                // corrupting shared state, so continuing to serve this
                // session is sound.
                counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                Response::Error {
                    message: "internal error: request panicked; connection still serviceable"
                        .into(),
                }
            }
        };
        #[cfg(feature = "failpoints")]
        if recycling::fault::fire("wire.write").is_some() {
            return; // injected write failure: the peer sees a close
        }
        if !respond(&mut writer, &response) || closing {
            return;
        }
        if draining.load(Ordering::Relaxed) {
            return; // graceful shutdown: answered the in-flight request
        }
    }
}

fn protocol_error(e: &ProtoError) -> Response {
    Response::Error {
        message: format!("protocol error: {e}"),
    }
}

fn respond(w: &mut impl std::io::Write, resp: &Response) -> bool {
    match encode_response(resp) {
        Ok(payload) => write_frame(w, &payload).is_ok(),
        Err(_) => false,
    }
}

/// Execute one request against the connection's session.
fn handle(
    db: &Database,
    session: &mut Session,
    request: Request,
    counters: &ServeCounters,
) -> Response {
    match request {
        Request::Query {
            template,
            params,
            deadline_ms,
        } => {
            let result = if deadline_ms > 0 {
                session.query_named_with_deadline(
                    &template,
                    &params,
                    Duration::from_millis(deadline_ms),
                )
            } else {
                session.query_named(&template, &params)
            };
            match result {
                Ok(reply) => Response::Query(QueryResult {
                    exports: reply
                        .exports
                        .iter()
                        .map(|(n, v)| (n.clone(), displayable(v)))
                        .collect(),
                    marked: reply.marked,
                    reused: reply.reused,
                    subsumed: reply.subsumed,
                    admitted: reply.admitted,
                    elapsed_us: reply.elapsed.as_micros() as u64,
                }),
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::Commit {
            table,
            inserts,
            deletes,
        } => {
            let update = Update::to(&table).insert(inserts).delete(deletes);
            match session.commit(update) {
                Ok(report) => Response::Commit {
                    inserted: report
                        .inserted
                        .first()
                        .map(|(_, b)| b.len() as u64)
                        .unwrap_or(0),
                    deleted: report.deleted.len() as u64,
                    epoch: db.epoch(),
                },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::Stats => Response::Stats(stats_pairs(db, counters)),
        Request::Close => Response::Closed,
    }
}

fn stats_pairs(db: &Database, counters: &ServeCounters) -> Vec<(String, u64)> {
    let s = db.stats();
    let pool = db.pool();
    let pairs: Vec<(&str, u64)> = vec![
        ("monitored", s.monitored),
        ("hits", s.hits),
        ("local_hits", s.local_hits),
        ("global_hits", s.global_hits),
        ("cross_session_hits", s.cross_session_hits),
        ("subsumed", s.subsumed),
        ("admissions", s.admissions),
        ("admission_rejects", s.admission_rejects),
        ("session_budget_rejects", s.session_budget_rejects),
        ("duplicate_admissions", s.duplicate_admissions),
        ("evictions", s.evictions),
        ("inline_evictions", s.inline_evictions),
        ("background_evictions", s.background_evictions),
        ("collector_minor_rounds", s.minor_rounds),
        ("collector_major_rounds", s.major_rounds),
        // round durations travel as integer microseconds — the wire
        // protocol's counters are u64
        ("collector_avg_minor_us", (s.avg_minor_ms * 1000.0) as u64),
        ("collector_avg_major_us", (s.avg_major_ms * 1000.0) as u64),
        ("collector_headroom_bytes", s.headroom_bytes),
        ("leaf_index_size", s.leaf_index_size),
        ("evict_gather_visited", s.evict_gather_visited),
        ("evict_gather_rounds", s.evict_gather_rounds),
        ("invalidated", s.invalidated),
        ("propagated", s.propagated),
        ("sessions", s.sessions),
        ("active_sessions", s.active_sessions),
        // degraded-mode observability: recycler-side ...
        ("deadline_skips", s.deadline_skips),
        ("collector_restarts", s.collector_restarts),
        ("shards_quarantined", s.shards_quarantined),
        ("shards_repaired", s.shards_repaired),
        ("quarantined_now", s.quarantined_now),
        // ... and server-side
        ("server_worker_panics", counters.worker_panics()),
        ("server_accept_errors", counters.accept_errors()),
        ("server_read_timeouts", counters.read_timeouts()),
        ("pool_entries", pool.len() as u64),
        ("pool_bytes", pool.bytes() as u64),
        ("epoch", db.epoch()),
    ];
    pairs.into_iter().map(|(n, v)| (n.to_string(), v)).collect()
}
