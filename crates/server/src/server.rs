//! The TCP front-end: an **epoll reactor** plus a small worker pool.
//!
//! One reactor thread owns every socket: it accepts, reads nonblocking
//! sockets into per-connection incremental frame decoders, flushes
//! per-connection write buffers, and is the only caller of `epoll_ctl`.
//! Decoded `Query`/`Commit`/`Close` requests queue on their connection;
//! a connection with queued work is pushed onto a **ready queue** from
//! which `max_sessions` workers pull — so threads are spent only on
//! *runnable* sessions, and ten thousand idle connections cost ten
//! thousand small buffers, not ten thousand parked threads.
//!
//! `Hello` (the v2 handshake) and `Stats` are answered inline on the
//! reactor — `Stats` needs no session, which is also what makes it the
//! protocol's demonstrably out-of-order response: it overtakes earlier
//! pipelined queries still waiting on a worker.
//!
//! Connection admission is a **live-connection limit**
//! (`max_connections`, defaulting to `max_sessions + backlog` for
//! continuity with the thread-per-connection ancestor): a connection
//! beyond it gets a `Busy` frame queued on a nonblocking write buffer
//! and a short linger to flush it — no dedicated rejection writer
//! threads, and a rejected peer that never reads cannot stall anyone.
//!
//! Read timeouts are **mid-frame only**: the deadline arms when a
//! connection stands inside a frame (or inside the handshake) and
//! disarms at every frame boundary, so a slow-loris trickler is killed
//! with a typed error while an idle keep-alive connection between
//! requests costs nothing, forever.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use recycling::{Database, Session, Update};

use crate::conn::{Conn, ConnState, Phase, Work};
use crate::protocol::{
    decode_request, displayable, ProtoError, QueryResult, Request, Response, PROTOCOL_VERSION,
};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Serving limits.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads — the number of sessions that *execute*
    /// concurrently. Connections beyond this merely wait their turn on
    /// the ready queue; they are not rejected.
    pub max_sessions: usize,
    /// Admission headroom over `max_sessions`: when `max_connections` is
    /// `None`, the live-connection limit is `max_sessions + backlog`
    /// (the same envelope the thread-per-connection ancestor enforced
    /// with its worker pool + wait queue).
    pub backlog: usize,
    /// The slow-loris guard: a connection stalled **mid-frame** (or
    /// mid-handshake) longer than this is closed with a typed `Error`
    /// frame. An idle connection *between* frames is never timed out —
    /// idle costs nothing under the reactor. `None` disables the guard.
    pub read_timeout: Option<Duration>,
    /// Hard cap on live connections; beyond it new connections are
    /// turned away with a `Busy` frame. `None` derives the cap from
    /// `max_sessions + backlog`.
    pub max_connections: Option<usize>,
    /// Per-connection cap on decoded-but-unexecuted pipelined requests.
    /// At the cap the reactor simply stops reading that socket until a
    /// worker drains it — backpressure by readiness, not by buffering.
    pub max_pipeline: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_sessions: 8,
            backlog: 16,
            read_timeout: Some(Duration::from_secs(30)),
            max_connections: None,
            max_pipeline: 64,
        }
    }
}

impl ServerConfig {
    fn connection_limit(&self) -> usize {
        self.max_connections
            .unwrap_or(self.max_sessions.max(1) + self.backlog)
            .max(1)
    }
}

/// Degraded-mode observability: counters for the faults the server
/// absorbs instead of dying. Exposed via [`Server::counters`] and over
/// the wire in the `Stats` response (`server_*` keys).
#[derive(Debug, Default)]
pub struct ServeCounters {
    worker_panics: AtomicU64,
    accept_errors: AtomicU64,
    read_timeouts: AtomicU64,
}

impl ServeCounters {
    /// Panics the server contained: a request handler that panicked in a
    /// worker (answered with a typed `Error` frame, connection kept
    /// serving) or a connection whose reactor-side event handling
    /// panicked (that one connection severed, the reactor kept running).
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Transient `accept()` failures absorbed by backoff (fd exhaustion,
    /// aborted handshakes) — the reactor slept and retried instead of
    /// exiting.
    pub fn accept_errors(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    /// Connections closed because they stalled mid-frame past the read
    /// deadline (slow-loris guard, `ServerConfig::read_timeout`).
    pub fn read_timeouts(&self) -> u64 {
        self.read_timeouts.load(Ordering::Relaxed)
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared between the reactor, the workers and the [`Server`]
/// handle.
struct Shared {
    db: Database,
    config: ServerConfig,
    running: AtomicBool,
    draining: AtomicBool,
    /// Every live connection by token. The reactor inserts/removes;
    /// workers only look up (and never hold this lock while holding a
    /// connection lock).
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    /// Tokens of connections with queued work and no worker on them.
    ready: Mutex<VecDeque<u64>>,
    ready_cv: Condvar,
    /// Tokens workers finished touching: the reactor flushes their
    /// responses and recomputes their epoll interest on the next turn.
    dirty: Mutex<Vec<u64>>,
    /// Kicks the reactor out of `epoll_wait` (worker notifications,
    /// shutdown, drain).
    wake: EventFd,
    counters: ServeCounters,
    rejected: AtomicU64,
    live: AtomicUsize,
}

impl Shared {
    fn schedule_locked(&self, st: &mut ConnState, token: u64) {
        if !st.dead && !st.running && !st.pending.is_empty() {
            st.running = true;
            lock(&self.ready).push_back(token);
            self.ready_cv.notify_one();
        }
    }
}

/// A running TCP front-end over one [`Database`]. Start with
/// [`Server::start`], stop with [`Server::shutdown`] /
/// [`Server::shutdown_graceful`] (drop leaks the threads until process
/// exit — fine for a real server, call `shutdown` in tests).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start the reactor thread plus `config.max_sessions` workers. Each
    /// connection gets its own [`Database::session`], created lazily at
    /// its first `Query`/`Commit` — an idle or stats-only connection
    /// never instantiates an engine.
    pub fn start(db: Database, addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let epoll = Epoll::new()?;
        let wake = EventFd::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(wake.fd(), EPOLLIN, TOKEN_WAKE)?;

        let shared = Arc::new(Shared {
            db,
            config,
            running: AtomicBool::new(true),
            draining: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            dirty: Mutex::new(Vec::new()),
            wake,
            counters: ServeCounters::default(),
            rejected: AtomicU64::new(0),
            live: AtomicUsize::new(0),
        });

        let workers: Vec<JoinHandle<()>> = (0..config.max_sessions.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rcy-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rcy-reactor".into())
                .spawn(move || {
                    Reactor {
                        shared,
                        epoll,
                        listener,
                        deadlines: HashMap::new(),
                        next_token: FIRST_CONN_TOKEN,
                        scratch: vec![0u8; READ_SCRATCH],
                        accept_backoff: ACCEPT_BACKOFF_START,
                        draining_applied: false,
                    }
                    .run()
                })
                .expect("spawn reactor")
        };

        Ok(Server {
            addr,
            shared,
            reactor: Some(reactor),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections turned away by admission control so far.
    pub fn rejected_connections(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Connections currently live (admitted and not yet closed).
    pub fn live_connections(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// The server's degraded-mode counters (panics contained, accept
    /// errors absorbed, read timeouts enforced).
    pub fn counters(&self) -> &ServeCounters {
        &self.shared.counters
    }

    /// Stop immediately: sever every connection, wake every thread and
    /// join them. Clients with a request in flight see their connection
    /// drop.
    pub fn shutdown(mut self) {
        self.shared.running.store(false, Ordering::Relaxed);
        self.shared.wake.notify();
        self.shared.ready_cv.notify_all();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        self.shared.ready_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Graceful variant of [`Self::shutdown`]: stop reading new
    /// requests, answer everything already decoded, flush, close. New
    /// connections during the drain are dropped immediately (a clean
    /// close, never a torn reply). Connections still mid-request after
    /// `grace` are severed as in `shutdown`.
    pub fn shutdown_graceful(self, grace: Duration) {
        self.shared.draining.store(true, Ordering::Relaxed);
        self.shared.wake.notify();
        let deadline = Instant::now() + grace;
        while Instant::now() < deadline {
            if lock(&self.shared.conns).is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.shutdown();
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Per-connection read scratch, shared across all connections (one
/// allocation per reactor, zero per connection).
const READ_SCRATCH: usize = 64 * 1024;
/// Socket reads per connection per event turn — bounds how long one hot
/// connection can hold the reactor (level-triggered epoll refires for
/// the rest).
const READ_ROUNDS: usize = 4;
/// Requests one worker executes on one connection before re-queueing it
/// behind other runnable connections — pipelining fairness.
const WORKER_BATCH: usize = 16;
/// How long a closing connection may take to drain its goodbye bytes
/// (Busy frames, fatal errors) before being severed — a turned-away
/// peer that never reads is bounded by this.
const CLOSE_LINGER: Duration = Duration::from_secs(2);
/// First sleep after a failed `accept()`; doubles per consecutive
/// failure up to [`ACCEPT_BACKOFF_CAP`], resets on success.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(5);
/// Ceiling for the accept error backoff.
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(250);

// ----- the reactor ----------------------------------------------------------

struct Reactor {
    shared: Arc<Shared>,
    epoll: Epoll,
    listener: TcpListener,
    /// Armed deadlines by token: mid-frame read deadlines (Serving),
    /// handshake deadlines (Handshake) and goodbye-flush lingers
    /// (Closing). Disarmed at every frame boundary — an idle connection
    /// has no entry here.
    deadlines: HashMap<u64, Instant>,
    next_token: u64,
    scratch: Vec<u8>,
    accept_backoff: Duration,
    draining_applied: bool,
}

impl Reactor {
    fn run(&mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
        loop {
            let timeout = self.next_timeout();
            let turn: Vec<(u64, u32)> = match self.epoll.wait(&mut events, timeout) {
                Ok(evs) => evs.iter().map(|e| (e.data, e.events)).collect(),
                Err(_) => Vec::new(),
            };
            if !self.shared.running.load(Ordering::Relaxed) {
                break;
            }
            if self.shared.draining.load(Ordering::Relaxed) && !self.draining_applied {
                self.apply_drain();
            }
            for (token, bits) in turn {
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.shared.wake.drain(),
                    t => self.conn_event(t, bits),
                }
            }
            self.process_dirty();
            self.check_deadlines();
        }
        self.close_all();
    }

    fn next_timeout(&self) -> Option<Duration> {
        let next = self.deadlines.values().min()?;
        Some(next.saturating_duration_since(Instant::now()))
    }

    fn lookup(&self, token: u64) -> Option<Arc<Conn>> {
        lock(&self.shared.conns).get(&token).cloned()
    }

    // --- accepting ---

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_START;
                    if self.shared.draining.load(Ordering::Relaxed)
                        || !self.shared.running.load(Ordering::Relaxed)
                    {
                        continue; // drop: clean close, never a torn reply
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.admit(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Transient accept failures (EMFILE, aborted
                    // handshakes) must neither spin the reactor hot (the
                    // listener stays level-triggered ready) nor kill it:
                    // count, back off, try again.
                    self.shared
                        .counters
                        .accept_errors
                        .fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.accept_backoff);
                    self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_CAP);
                    break;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        let token = self.next_token;
        self.next_token += 1;
        let limit = self.shared.config.connection_limit();
        if self.shared.live.load(Ordering::Relaxed) >= limit {
            // Admission rejection under the reactor: the Busy frame is
            // just bytes on a nonblocking write buffer with a short
            // linger — no writer threads, no way for a non-reading peer
            // to stall anything (the PR 5 stopgap of detached rejection
            // writers is gone).
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            let conn = Arc::new(Conn::new(token, stream));
            {
                let mut st = lock(&conn.state);
                st.phase = Phase::Closing;
                st.queue_response(&Response::Busy {
                    reason: format!("server at capacity ({limit} connections)"),
                });
                if !st.flush() || st.unwritten() == 0 {
                    return; // fully sent (or died): drop closes the fd
                }
                st.interest = EPOLLOUT;
                if self
                    .epoll
                    .add(st.stream.as_raw_fd(), EPOLLOUT, token)
                    .is_err()
                {
                    return;
                }
            }
            self.deadlines.insert(token, Instant::now() + CLOSE_LINGER);
            lock(&self.shared.conns).insert(token, conn);
            return;
        }
        self.shared.live.fetch_add(1, Ordering::Relaxed);
        let conn = Arc::new(Conn::new(token, stream));
        {
            let mut st = lock(&conn.state);
            st.counted = true;
            st.interest = EPOLLIN | EPOLLRDHUP;
            if self
                .epoll
                .add(st.stream.as_raw_fd(), st.interest, token)
                .is_err()
            {
                self.shared.live.fetch_sub(1, Ordering::Relaxed);
                return;
            }
        }
        // the handshake must arrive within the read deadline — a
        // connection that never says Hello is not "idle", it is a slot
        // squatter
        if let Some(rt) = self.shared.config.read_timeout {
            self.deadlines.insert(token, Instant::now() + rt);
        }
        lock(&self.shared.conns).insert(token, conn);
    }

    // --- per-connection events ---

    /// One connection's readiness event, with per-connection panic
    /// containment: a panic anywhere in this connection's handling
    /// (including an injected `wire.*` Panic fault) severs that one
    /// connection, never the reactor.
    fn conn_event(&mut self, token: u64, bits: u32) {
        let Some(conn) = self.lookup(token) else {
            return;
        };
        let drove = catch_unwind(AssertUnwindSafe(|| self.drive(&conn, bits)));
        if drove.is_err() {
            self.shared
                .counters
                .worker_panics
                .fetch_add(1, Ordering::Relaxed);
            lock(&conn.state).dead = true;
            self.finish(&conn);
        }
    }

    fn drive(&mut self, conn: &Arc<Conn>, bits: u32) {
        let now = Instant::now();
        {
            let mut st = lock(&conn.state);
            if bits & (EPOLLERR | EPOLLHUP) != 0 {
                st.dead = true;
            }
            if !st.dead && bits & EPOLLOUT != 0 {
                self.try_flush(&mut st);
            }
            if !st.dead && bits & (EPOLLIN | EPOLLRDHUP) != 0 && st.phase != Phase::Closing {
                self.read_turn(&mut st, now);
            }
            self.shared.schedule_locked(&mut st, conn.token);
            if !st.dead && st.unwritten() > 0 {
                // answer inline responses (Hello, Stats, fatal errors)
                // now rather than on the next EPOLLOUT turn
                self.try_flush(&mut st);
            }
        }
        self.sync(conn, now);
    }

    /// Read whatever the socket has and dispatch every decoded frame.
    fn read_turn(&mut self, st: &mut ConnState, now: Instant) {
        #[cfg(feature = "failpoints")]
        if recycling::fault::fire("wire.read").is_some() {
            // a scripted Io/Deny fault models the transport dying
            // mid-read: report and hang up, exactly like a real one
            fatal(st, &ProtoError::Io("injected fault".into()));
            return;
        }
        match st.fill(&mut self.scratch, READ_ROUNDS) {
            Ok(eof) => {
                self.dispatch_frames(st, now);
                if eof {
                    if st.decoder.mid_frame() {
                        // the peer hung up inside a frame: report the
                        // truncation (its read side may still be open)
                        // and close
                        fatal(st, &ProtoError::Truncated);
                    } else if st.phase != Phase::Closing {
                        // clean half-close at a frame boundary: answer
                        // everything queued, then close
                        st.phase = Phase::Closing;
                    }
                }
            }
            Err(e) => fatal(st, &e),
        }
    }

    fn dispatch_frames(&self, st: &mut ConnState, now: Instant) {
        while st.phase != Phase::Closing {
            let Some(payload) = st.decoder.next_frame() else {
                return;
            };
            let req = match decode_request(&payload) {
                Ok(r) => r,
                Err(e) => {
                    fatal(st, &e);
                    break;
                }
            };
            if req.id() == Some(0) {
                fatal_msg(st, "request id 0 is reserved for fatal errors".into());
                break;
            }
            match (st.phase, req) {
                (Phase::Handshake, Request::Hello { version }) => {
                    if version == PROTOCOL_VERSION {
                        st.queue_response(&Response::Hello {
                            version: PROTOCOL_VERSION,
                        });
                        st.phase = Phase::Serving;
                    } else {
                        fatal_msg(
                            st,
                            format!(
                                "protocol version mismatch: client v{version}, \
                                 server v{PROTOCOL_VERSION}"
                            ),
                        );
                    }
                }
                (Phase::Handshake, _) => {
                    fatal_msg(st, "handshake required: first frame must be Hello".into());
                }
                (_, Request::Hello { .. }) => {
                    fatal_msg(st, "unexpected Hello after handshake".into());
                }
                (_, Request::Stats { id }) => {
                    // the out-of-order fast path: answered here on the
                    // reactor, overtaking queued queries — no session,
                    // no worker, no queueing
                    st.queue_response(&Response::Stats {
                        id,
                        pairs: stats_pairs(&self.shared),
                    });
                }
                (_, req) => st.pending.push_back(Work { req, at: now }),
            }
        }
        // fatal mid-stream: drop frames decoded after the poison one
        while st.decoder.next_frame().is_some() {}
    }

    /// Flush, with the outbound failpoint: an injected `wire.write`
    /// fault models the transport dying mid-write (the peer sees a
    /// close).
    fn try_flush(&self, st: &mut ConnState) {
        if st.unwritten() == 0 {
            return;
        }
        #[cfg(feature = "failpoints")]
        if recycling::fault::fire("wire.write").is_some() {
            st.dead = true;
            return;
        }
        if !st.flush() {
            st.dead = true;
        }
    }

    // --- bookkeeping ---

    /// Recompute one connection's epoll interest, (dis)arm its deadline
    /// and reap it when finished. The single funnel every path ends in.
    fn sync(&mut self, conn: &Arc<Conn>, now: Instant) {
        let mut st = lock(&conn.state);
        if st.finished() {
            drop(st);
            self.finish(conn);
            return;
        }
        let want = st.wanted_interest(self.shared.config.max_pipeline.max(1));
        if want != st.interest {
            let _ = self.epoll.modify(st.stream.as_raw_fd(), want, conn.token);
            st.interest = want;
        }
        let token = conn.token;
        match st.phase {
            Phase::Closing => {
                if st.unwritten() > 0 {
                    self.deadlines.entry(token).or_insert(now + CLOSE_LINGER);
                } else {
                    self.deadlines.remove(&token);
                }
            }
            Phase::Handshake => {
                if let Some(rt) = self.shared.config.read_timeout {
                    self.deadlines.entry(token).or_insert(now + rt);
                }
            }
            Phase::Serving => {
                // mid-frame only: the deadline re-arms while the decoder
                // stands inside a frame and clears at every boundary, so
                // idle keep-alive connections are free
                match (self.shared.config.read_timeout, st.decoder.mid_frame()) {
                    (Some(rt), true) => {
                        self.deadlines.insert(token, now + rt);
                    }
                    _ => {
                        self.deadlines.remove(&token);
                    }
                }
            }
        }
    }

    /// Sever and forget one connection. Idempotent (keyed on the map
    /// removal); safe while a worker is mid-request on it — the worker
    /// sees `dead` when it relocks and walks away.
    fn finish(&mut self, conn: &Arc<Conn>) {
        if lock(&self.shared.conns).remove(&conn.token).is_none() {
            return;
        }
        self.deadlines.remove(&conn.token);
        let mut st = lock(&conn.state);
        st.dead = true;
        let _ = self.epoll.delete(st.stream.as_raw_fd());
        let _ = st.stream.shutdown(std::net::Shutdown::Both);
        if st.counted {
            st.counted = false;
            self.shared.live.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Flush + resync every connection a worker touched since the last
    /// turn, with the same per-connection panic containment as
    /// [`Self::conn_event`].
    fn process_dirty(&mut self) {
        let tokens = std::mem::take(&mut *lock(&self.shared.dirty));
        let now = Instant::now();
        for token in tokens {
            let Some(conn) = self.lookup(token) else {
                continue;
            };
            let drove = catch_unwind(AssertUnwindSafe(|| {
                {
                    let mut st = lock(&conn.state);
                    self.try_flush(&mut st);
                    self.shared.schedule_locked(&mut st, token);
                }
                self.sync(&conn, now);
            }));
            if drove.is_err() {
                self.shared
                    .counters
                    .worker_panics
                    .fetch_add(1, Ordering::Relaxed);
                lock(&conn.state).dead = true;
                self.finish(&conn);
            }
        }
    }

    fn check_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .deadlines
            .iter()
            .filter(|(_, t)| **t <= now)
            .map(|(k, _)| *k)
            .collect();
        for token in expired {
            self.deadlines.remove(&token);
            let Some(conn) = self.lookup(token) else {
                continue;
            };
            {
                let mut st = lock(&conn.state);
                if st.phase == Phase::Closing {
                    // goodbye-flush linger expired: the peer never read
                    // its Busy/Error — sever
                    st.dead = true;
                } else {
                    // slow-loris guard: stalled mid-frame (or never
                    // finished the handshake) past the deadline
                    self.shared
                        .counters
                        .read_timeouts
                        .fetch_add(1, Ordering::Relaxed);
                    fatal_msg(
                        &mut st,
                        "read timeout: no complete frame within the deadline".into(),
                    );
                    self.try_flush(&mut st);
                }
            }
            self.sync(&conn, now);
        }
    }

    /// Graceful drain: no more reads anywhere; everything already
    /// decoded is answered, flushed, then closed.
    fn apply_drain(&mut self) {
        self.draining_applied = true;
        let conns: Vec<Arc<Conn>> = lock(&self.shared.conns).values().cloned().collect();
        let now = Instant::now();
        for conn in conns {
            {
                let mut st = lock(&conn.state);
                st.phase = Phase::Closing;
                self.try_flush(&mut st);
            }
            self.sync(&conn, now);
        }
    }

    fn close_all(&mut self) {
        let conns: Vec<Arc<Conn>> = lock(&self.shared.conns).drain().map(|(_, c)| c).collect();
        for conn in conns {
            let mut st = lock(&conn.state);
            st.dead = true;
            let _ = st.stream.shutdown(std::net::Shutdown::Both);
        }
        self.deadlines.clear();
    }
}

fn fatal(st: &mut ConnState, e: &ProtoError) {
    fatal_msg(st, format!("protocol error: {e}"));
}

/// Queue a connection-fatal `Error` frame (request id 0) and stop
/// reading. Requests already decoded stay queued — they are answered
/// before the close, in order, exactly as a drain would.
fn fatal_msg(st: &mut ConnState, message: String) {
    st.queue_response(&Response::Error { id: 0, message });
    st.phase = Phase::Closing;
}

// ----- the workers ----------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let token = {
            let mut q = lock(&shared.ready);
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                if !shared.running.load(Ordering::Relaxed) {
                    return;
                }
                q = shared
                    .ready_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let conn = lock(&shared.conns).get(&token).cloned();
        let Some(conn) = conn else { continue }; // severed while queued
        run_conn(shared, &conn);
        // hand the connection back to the reactor: flush what we queued,
        // recompute interest (and re-arm reads if we drained it below
        // the pipeline cap)
        lock(&shared.dirty).push(token);
        shared.wake.notify();
    }
}

/// Execute queued requests for one connection — at most [`WORKER_BATCH`]
/// before re-queueing it behind other runnable connections. Exactly one
/// worker runs a given connection at a time (`running`), so its session
/// sees requests strictly in arrival order even though the socket and
/// other connections' requests race freely.
fn run_conn(shared: &Shared, conn: &Arc<Conn>) {
    let mut executed = 0;
    loop {
        let mut st = lock(&conn.state);
        if st.dead || !shared.running.load(Ordering::Relaxed) {
            st.running = false;
            return;
        }
        let Some(work) = st.pending.pop_front() else {
            // nothing left: release the run slot. Rechecking under the
            // same lock acquisition closes the race with the reactor
            // appending new work — it only schedules when `running` is
            // already false.
            st.running = false;
            return;
        };
        if matches!(work.req, Request::Close) {
            st.queue_response(&Response::Closed);
            st.phase = Phase::Closing;
            st.pending.clear(); // frames pipelined past Close are void
            st.running = false;
            return;
        }
        // Lazy session: first Query/Commit pays for the engine; idle and
        // stats-only connections never do. The session leaves the state
        // for the duration of the run so the reactor keeps reading and
        // flushing this very connection while its request executes.
        let mut session = st.session.take();
        drop(st);
        if session.is_none() {
            session = Some(shared.db.session());
        }
        let response = execute_contained(shared, session.as_mut().expect("just filled"), work);
        let mut st = lock(&conn.state);
        st.session = session;
        if !st.dead {
            st.queue_response(&response);
        }
        executed += 1;
        if executed >= WORKER_BATCH {
            if st.pending.is_empty() {
                st.running = false;
            } else {
                // fairness: yield to other runnable connections but keep
                // the run slot — nobody else may execute this session
                drop(st);
                lock(&shared.ready).push_back(conn.token);
                shared.ready_cv.notify_one();
            }
            return;
        }
    }
}

/// Run one request under panic containment: a handler that panics costs
/// one typed `Error` reply, never the worker (the recycler's shard
/// quarantine guarantees a panicked probe/admission degrades to misses
/// rather than corrupting shared state, so the session stays usable).
fn execute_contained(shared: &Shared, session: &mut Session, work: Work) -> Response {
    let id = work.req.id().unwrap_or(0);
    match catch_unwind(AssertUnwindSafe(|| execute(&shared.db, session, work))) {
        Ok(resp) => resp,
        Err(_) => {
            shared
                .counters
                .worker_panics
                .fetch_add(1, Ordering::Relaxed);
            Response::Error {
                id,
                message: "internal error: request panicked; connection still serviceable".into(),
            }
        }
    }
}

/// Execute one request against the connection's session. Wire deadlines
/// (`deadline_ms`) are measured from the frame's decode time, so time
/// spent queued behind earlier pipelined requests counts against the
/// budget.
fn execute(db: &Database, session: &mut Session, work: Work) -> Response {
    match work.req {
        Request::Query {
            id,
            template,
            params,
            deadline_ms,
        } => {
            let result = if deadline_ms > 0 {
                let budget = Duration::from_millis(deadline_ms).saturating_sub(work.at.elapsed());
                session.query_named_with_deadline(&template, &params, budget)
            } else {
                session.query_named(&template, &params)
            };
            match result {
                Ok(reply) => Response::Query {
                    id,
                    result: QueryResult {
                        exports: reply
                            .exports
                            .iter()
                            .map(|(n, v)| (n.clone(), displayable(v)))
                            .collect(),
                        marked: reply.marked,
                        reused: reply.reused,
                        subsumed: reply.subsumed,
                        admitted: reply.admitted,
                        elapsed_us: reply.elapsed.as_micros() as u64,
                    },
                },
                Err(e) => Response::Error {
                    id,
                    message: e.to_string(),
                },
            }
        }
        Request::Commit {
            id,
            table,
            inserts,
            deletes,
        } => {
            let update = Update::to(&table).insert(inserts).delete(deletes);
            match session.commit(update) {
                Ok(report) => Response::Commit {
                    id,
                    inserted: report
                        .inserted
                        .first()
                        .map(|(_, b)| b.len() as u64)
                        .unwrap_or(0),
                    deleted: report.deleted.len() as u64,
                    epoch: db.epoch(),
                },
                Err(e) => Response::Error {
                    id,
                    message: e.to_string(),
                },
            }
        }
        // Hello/Stats/Close never reach a worker (reactor handles them)
        other => Response::Error {
            id: other.id().unwrap_or(0),
            message: "internal error: request routed to a worker unexpectedly".into(),
        },
    }
}

fn stats_pairs(shared: &Shared) -> Vec<(String, u64)> {
    let db = &shared.db;
    let counters = &shared.counters;
    let s = db.stats();
    let pool = db.pool();
    let pairs: Vec<(&str, u64)> = vec![
        ("monitored", s.monitored),
        ("hits", s.hits),
        ("local_hits", s.local_hits),
        ("global_hits", s.global_hits),
        ("cross_session_hits", s.cross_session_hits),
        ("subsumed", s.subsumed),
        ("admissions", s.admissions),
        ("admission_rejects", s.admission_rejects),
        ("session_budget_rejects", s.session_budget_rejects),
        ("duplicate_admissions", s.duplicate_admissions),
        ("evictions", s.evictions),
        ("inline_evictions", s.inline_evictions),
        ("background_evictions", s.background_evictions),
        ("collector_minor_rounds", s.minor_rounds),
        ("collector_major_rounds", s.major_rounds),
        // round durations travel as integer microseconds — the wire
        // protocol's counters are u64
        ("collector_avg_minor_us", (s.avg_minor_ms * 1000.0) as u64),
        ("collector_avg_major_us", (s.avg_major_ms * 1000.0) as u64),
        ("collector_headroom_bytes", s.headroom_bytes),
        ("leaf_index_size", s.leaf_index_size),
        ("evict_gather_visited", s.evict_gather_visited),
        ("evict_gather_rounds", s.evict_gather_rounds),
        ("invalidated", s.invalidated),
        ("propagated", s.propagated),
        // operator-state artifacts (join builds, group maps, sorted runs)
        ("artifact_hits", s.artifact_hits),
        ("artifact_admissions", s.artifact_admissions),
        ("artifact_bytes", s.artifact_bytes),
        ("artifact_saved_us", s.artifact_saved.as_micros() as u64),
        // residency-tier gauges and counters (the tiering subsystem)
        ("tier_raw_bytes", s.raw_bytes),
        ("tier_compressed_bytes", s.compressed_bytes),
        ("tier_spilled_bytes", s.spilled_bytes),
        ("tier_demotions_compressed", s.demotions_compressed),
        ("tier_demotions_spilled", s.demotions_spilled),
        ("tier_promotions", s.tier_promotions),
        // tier costs travel as integer microseconds, like round durations
        ("tier_decompress_us", s.decompress_cost.as_micros() as u64),
        ("tier_rehydrate_us", s.rehydrate_cost.as_micros() as u64),
        ("sessions", s.sessions),
        ("active_sessions", s.active_sessions),
        // degraded-mode observability: recycler-side ...
        ("deadline_skips", s.deadline_skips),
        ("collector_restarts", s.collector_restarts),
        ("shards_quarantined", s.shards_quarantined),
        ("shards_repaired", s.shards_repaired),
        ("quarantined_now", s.quarantined_now),
        // ... and server-side
        ("server_worker_panics", counters.worker_panics()),
        ("server_accept_errors", counters.accept_errors()),
        ("server_read_timeouts", counters.read_timeouts()),
        (
            "server_live_connections",
            shared.live.load(Ordering::Relaxed) as u64,
        ),
        (
            "server_rejected_connections",
            shared.rejected.load(Ordering::Relaxed),
        ),
        ("pool_entries", pool.len() as u64),
        ("pool_bytes", pool.bytes() as u64),
        ("epoch", db.epoch()),
    ];
    pairs.into_iter().map(|(n, v)| (n.to_string(), v)).collect()
}
