//! The per-connection state machine the reactor drives: incremental
//! read decoding, a nonblocking write buffer, a queue of decoded
//! requests awaiting a worker, and the lifecycle phases from handshake
//! to drain.
//!
//! One [`Conn`] exists per accepted socket, shared between the reactor
//! thread (all socket I/O, epoll interest) and the worker pool (request
//! execution) behind one mutex. The locking discipline is strictly
//! one-connection-at-a-time — neither side ever holds two connection
//! locks, and workers release the lock while a request executes (the
//! session is taken out of the state for the duration), so the reactor
//! keeps reading and writing this very connection while its requests
//! run.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Instant;

use recycling::Session;

use crate::protocol::{encode_response, FrameDecoder, Request, Response};

/// Write-buffer capacity above which a drained buffer is released
/// rather than kept — the lever behind "flat memory per idle
/// connection": a connection that once shipped a large response must
/// not pin that allocation while it sits idle.
const WBUF_KEEP: usize = 16 * 1024;

/// Connection lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accepted; the v2 `Hello` frame has not arrived yet. Any other
    /// first frame is a protocol error (this is what a v1 client sees).
    Handshake,
    /// Handshake done; requests flow.
    Serving,
    /// No more reads: flush whatever is buffered, then close. Entered
    /// on `Close`, fatal protocol errors, read timeouts, admission
    /// rejection (the Busy goodbye) and graceful drain.
    Closing,
}

/// One decoded request waiting for (or being executed by) a worker,
/// stamped with its decode time so a wire `deadline_ms` measures from
/// arrival — time spent queued behind earlier pipelined requests counts
/// against the budget, exactly as it would for a thread-per-connection
/// server.
pub struct Work {
    /// The decoded request (only `Query`/`Commit`/`Close` ever queue;
    /// `Hello` and `Stats` are answered inline by the reactor).
    pub req: Request,
    /// When the frame was decoded.
    pub at: Instant,
}

/// The mutex-protected state of one connection.
pub struct ConnState {
    /// The nonblocking socket. Only the reactor reads/writes it; workers
    /// touch buffers and the session.
    pub stream: TcpStream,
    /// Incremental inbound frame decoder.
    pub decoder: FrameDecoder,
    /// Outbound bytes not yet accepted by the socket, from `wpos`.
    pub wbuf: Vec<u8>,
    /// Consumed prefix of `wbuf` (compacted on flush).
    pub wpos: usize,
    /// Decoded requests awaiting a worker, in arrival order.
    pub pending: VecDeque<Work>,
    /// The connection's database session, created lazily at its first
    /// `Query`/`Commit` — an idle or stats-only connection never pays
    /// for an engine, and never dilutes the per-session credit slices.
    pub session: Option<Session>,
    /// Lifecycle phase.
    pub phase: Phase,
    /// A worker currently holds this connection's run slot (at most one
    /// worker executes a given connection's requests at a time — the
    /// session is serial even though the socket is not).
    pub running: bool,
    /// Hard-kill flag: sever as soon as no worker is mid-request. Set by
    /// socket errors, hangups and hard shutdown.
    pub dead: bool,
    /// Whether this connection holds a slot in the live-connection count
    /// (admission control). False for turned-away connections that only
    /// linger to flush their Busy goodbye.
    pub counted: bool,
    /// Interest mask currently registered with epoll (reactor-owned;
    /// tracked to elide no-op `epoll_ctl` calls).
    pub interest: u32,
}

/// One live connection: a token (the epoll user-data) plus the shared
/// state.
pub struct Conn {
    /// Epoll token / map key.
    pub token: u64,
    /// The shared state (reactor + workers).
    pub state: Mutex<ConnState>,
}

impl Conn {
    /// Wrap a freshly accepted socket (already set nonblocking).
    pub fn new(token: u64, stream: TcpStream) -> Conn {
        Conn {
            token,
            state: Mutex::new(ConnState {
                stream,
                decoder: FrameDecoder::new(),
                wbuf: Vec::new(),
                wpos: 0,
                pending: VecDeque::new(),
                session: None,
                phase: Phase::Handshake,
                running: false,
                dead: false,
                counted: false,
                interest: 0,
            }),
        }
    }
}

impl ConnState {
    /// Queue an encoded response frame (length prefix + payload) on the
    /// write buffer. Unencodable responses (a BAT slipped through) are
    /// skipped — the layer above always summarises exports first, so
    /// this is a never-hit belt-and-braces.
    pub fn queue_response(&mut self, resp: &Response) {
        if let Ok(payload) = encode_response(resp) {
            self.wbuf
                .extend_from_slice(&(payload.len() as u32).to_le_bytes());
            self.wbuf.extend_from_slice(&payload);
        }
    }

    /// Bytes still owed to the socket.
    pub fn unwritten(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Flush as much of the write buffer as the socket will take.
    /// Returns `false` when the connection died mid-write (the caller
    /// severs it). On a clean drain the buffer is reset — and released
    /// entirely when it grew past [`WBUF_KEEP`], keeping idle
    /// connections flat.
    pub fn flush(&mut self) -> bool {
        while self.wpos < self.wbuf.len() {
            match (&self.stream).write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.wpos == self.wbuf.len() {
            if self.wbuf.capacity() > WBUF_KEEP {
                self.wbuf = Vec::new();
            } else {
                self.wbuf.clear();
            }
            self.wpos = 0;
        } else if self.wpos > WBUF_KEEP {
            // mid-flush on a slow peer: compact the consumed prefix so a
            // long pipelined burst cannot pin twice its bytes
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        true
    }

    /// Read whatever the socket has (bounded per call by `scratch`'s
    /// size times `rounds`), feeding the decoder. Returns `Ok(true)` if
    /// the peer half-closed (EOF seen), `Ok(false)` otherwise; `Err` on
    /// a transport error or an oversized/hostile frame.
    pub fn fill(
        &mut self,
        scratch: &mut [u8],
        rounds: usize,
    ) -> Result<bool, crate::protocol::ProtoError> {
        for _ in 0..rounds {
            match (&self.stream).read(scratch) {
                Ok(0) => return Ok(true),
                Ok(n) => self.decoder.push(&scratch[..n])?,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(crate::protocol::ProtoError::Io(e.to_string())),
            }
        }
        Ok(false)
    }

    /// The epoll interest this connection should hold right now.
    /// Reading is wanted only while serving (or awaiting the handshake)
    /// with headroom under the pipeline cap — a connection at its cap is
    /// simply not read until a worker drains it (backpressure without
    /// buffering). Writing is wanted while bytes are owed.
    pub fn wanted_interest(&self, max_pipeline: usize) -> u32 {
        let mut want = 0;
        if self.phase != Phase::Closing && self.pending.len() < max_pipeline {
            want |= crate::sys::EPOLLIN | crate::sys::EPOLLRDHUP;
        }
        if self.unwritten() > 0 {
            want |= crate::sys::EPOLLOUT;
        }
        want
    }

    /// True when nothing keeps this connection alive: it is closing (or
    /// dead), owes no bytes, has no queued work and no worker mid-run.
    pub fn finished(&self) -> bool {
        self.dead
            || (self.phase == Phase::Closing
                && self.unwritten() == 0
                && self.pending.is_empty()
                && !self.running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        (a, b)
    }

    #[test]
    fn wbuf_shrinks_after_large_flush() {
        let (a, b) = pair();
        a.set_nonblocking(true).unwrap();
        let mut st = Conn::new(1, a);
        let state = st.state.get_mut().unwrap();
        state.wbuf = vec![7u8; 200 * 1024];
        // drain via the peer until everything is flushed
        let mut sink = vec![0u8; 64 * 1024];
        b.set_nonblocking(true).unwrap();
        for _ in 0..1000 {
            if !state.flush() {
                panic!("flush died");
            }
            if state.unwritten() == 0 {
                break;
            }
            while let Ok(n) = (&b).read(&mut sink) {
                if n == 0 {
                    break;
                }
            }
        }
        assert_eq!(state.unwritten(), 0);
        assert_eq!(state.wbuf.capacity(), 0, "large wbuf must be released");
    }

    #[test]
    fn interest_tracks_phase_and_buffers() {
        let (a, _b) = pair();
        a.set_nonblocking(true).unwrap();
        let mut st = Conn::new(1, a);
        let state = st.state.get_mut().unwrap();
        assert_eq!(
            state.wanted_interest(8),
            crate::sys::EPOLLIN | crate::sys::EPOLLRDHUP
        );
        state.wbuf.extend_from_slice(b"x");
        assert_ne!(state.wanted_interest(8) & crate::sys::EPOLLOUT, 0);
        // at the pipeline cap: reads pause, writes continue
        for _ in 0..8 {
            state.pending.push_back(Work {
                req: Request::Close,
                at: Instant::now(),
            });
        }
        assert_eq!(state.wanted_interest(8) & crate::sys::EPOLLIN, 0);
        assert_ne!(state.wanted_interest(8) & crate::sys::EPOLLOUT, 0);
        state.phase = Phase::Closing;
        state.pending.clear();
        assert_eq!(state.wanted_interest(8) & crate::sys::EPOLLIN, 0);
        assert!(!state.finished(), "bytes still owed");
    }
}
