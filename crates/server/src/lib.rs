//! # rcy-server — a TCP serving front-end for the recycler database
//!
//! The paper's §8 evaluation replays the SkyServer web log against one
//! MonetDB server instance: many remote clients, one shared recycler.
//! This crate is that serving shape for the [`recycling::Database`]
//! facade, built fully offline (std `TcpListener`, hand-rolled framing —
//! no tokio, no serde):
//!
//! * [`protocol`] — a length-prefixed wire protocol with four requests
//!   (query / commit / stats / close), hardened against oversized,
//!   truncated and malformed frames;
//! * [`Server`] — an accept loop feeding a **bounded worker pool**: each
//!   served connection gets a dedicated [`recycling::Session`] for its
//!   lifetime, connections beyond `max_sessions + backlog` are rejected
//!   with a `Busy` frame (connection-level admission control);
//! * [`Client`] — a minimal blocking client for tests, benches and
//!   command-line poking.
//!
//! Queries reference **named templates** registered on the database
//! ([`recycling::DatabaseBuilder::template`] /
//! [`recycling::Database::register`]) — the same factoring MonetDB's SQL
//! front-end performs, and what makes query requests cheap to ship: a
//! name plus parameter values.
//!
//! ```no_run
//! use rbat::{Catalog, LogicalType, TableBuilder, Value};
//! use recycling::DatabaseBuilder;
//! use rcy_server::{Client, Server, ServerConfig};
//! use rmal::{ProgramBuilder, P};
//!
//! let mut cat = Catalog::new();
//! let mut tb = TableBuilder::new("t").column("x", LogicalType::Int);
//! for i in 0..1000 { tb.push_row(&[Value::Int(i)]); }
//! cat.add_table(tb.finish());
//!
//! let mut b = ProgramBuilder::new("count_range", 2);
//! let col = b.bind("t", "x");
//! let sel = b.select_closed(col, P(0), P(1));
//! let n = b.count(sel);
//! b.export("n", n);
//!
//! let db = DatabaseBuilder::new(cat).template("count_range", b.finish()).build();
//! let server = Server::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let reply = client.query("count_range", &[Value::Int(10), Value::Int(500)]).unwrap();
//! println!("n = {:?} ({} of {} instructions recycled)",
//!          reply.exports[0].1, reply.reused, reply.marked);
//! client.close().unwrap();
//! server.shutdown();
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, RetryPolicy};
pub use protocol::{ProtoError, QueryResult, Request, Response, MAX_FRAME};
pub use server::{ServeCounters, Server, ServerConfig};
