//! # rcy-server — a TCP serving front-end for the recycler database
//!
//! The paper's §8 evaluation replays the SkyServer web log against one
//! MonetDB server instance: many remote clients, one shared recycler.
//! This crate is that serving shape for the [`recycling::Database`]
//! facade, built fully offline (std sockets + a hand-rolled epoll shim —
//! no tokio, no serde, no libc crate):
//!
//! * [`protocol`] — a length-prefixed wire protocol (v2: handshake +
//!   request ids, so one connection holds many in-flight requests),
//!   hardened against oversized, truncated and malformed frames, with an
//!   incremental [`protocol::FrameDecoder`] for nonblocking sockets;
//! * [`Server`] — an **epoll reactor**: one thread owns every socket,
//!   and a small worker pool (`max_sessions`) executes only *runnable*
//!   sessions pulled from a ready queue, so thousands of idle
//!   connections cost buffers, not threads. Connections beyond
//!   `max_connections` are turned away with a `Busy` frame queued on a
//!   nonblocking write buffer;
//! * [`Client`] — a blocking client with a pipelined API
//!   (`send_*`/`recv_*` split plus batched `query_many`) — see
//!   [`client`] for the worked example.
//!
//! Queries reference **named templates** registered on the database
//! ([`recycling::DatabaseBuilder::template`] /
//! [`recycling::Database::register`]) — the same factoring MonetDB's SQL
//! front-end performs, and what makes query requests cheap to ship: a
//! name plus parameter values.
//!
//! ```no_run
//! use rbat::{Catalog, LogicalType, TableBuilder, Value};
//! use recycling::DatabaseBuilder;
//! use rcy_server::{Client, Server, ServerConfig};
//! use rmal::{ProgramBuilder, P};
//!
//! let mut cat = Catalog::new();
//! let mut tb = TableBuilder::new("t").column("x", LogicalType::Int);
//! for i in 0..1000 { tb.push_row(&[Value::Int(i)]); }
//! cat.add_table(tb.finish());
//!
//! let mut b = ProgramBuilder::new("count_range", 2);
//! let col = b.bind("t", "x");
//! let sel = b.select_closed(col, P(0), P(1));
//! let n = b.count(sel);
//! b.export("n", n);
//!
//! let db = DatabaseBuilder::new(cat).template("count_range", b.finish()).build();
//! let server = Server::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! // Blocking call-and-wait ...
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let reply = client.query("count_range", &[Value::Int(10), Value::Int(500)]).unwrap();
//! println!("n = {:?} ({} of {} instructions recycled)",
//!          reply.exports[0].1, reply.reused, reply.marked);
//!
//! // ... or pipelined: both in flight at once, collected by request id.
//! let a = client.send_query("count_range", &[Value::Int(0), Value::Int(99)]).unwrap();
//! let b = client.send_query("count_range", &[Value::Int(100), Value::Int(199)]).unwrap();
//! let rb = client.recv_query(b).unwrap();
//! let ra = client.recv_query(a).unwrap();
//! println!("{:?} then {:?}", ra.exports, rb.exports);
//! client.close().unwrap();
//! server.shutdown();
//! ```

#![deny(missing_docs)]

pub mod client;
mod conn;
pub mod protocol;
pub mod server;
mod sys;

pub use client::{Client, ClientError, RetryPolicy};
pub use protocol::{
    FrameDecoder, ProtoError, QueryResult, Request, Response, MAX_FRAME, PROTOCOL_VERSION,
};
pub use server::{ServeCounters, Server, ServerConfig};
pub use sys::raise_nofile_limit;
