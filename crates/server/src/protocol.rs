//! The wire protocol: length-prefixed frames over a byte stream,
//! **version 2 — pipelined**.
//!
//! Every message is one **frame**: a little-endian `u32` payload length
//! followed by that many payload bytes. Payloads are a tag byte plus a
//! tag-specific body; all integers are little-endian, floats travel as
//! IEEE-754 bit patterns, strings as `u32` length + UTF-8 bytes. The
//! protocol is deliberately tiny and hand-rolled — the build is fully
//! offline (no serde, no tokio).
//!
//! **v2 additions.** A connection opens with a [`Request::Hello`]
//! handshake carrying [`PROTOCOL_VERSION`]; the server answers
//! [`Response::Hello`] (or a fatal `Error` on a version mismatch — the
//! version bump is what tells a v1 client apart from line noise). Every
//! `Query`/`Commit`/`Stats` request then carries a client-chosen
//! **request id**, echoed on its response, so one connection can hold
//! many requests in flight at once (pipelining). Responses **may
//! complete out of order** — `Stats` in particular is answered out of
//! band by the reactor while earlier queries still sit on the session's
//! run queue — and must be matched by id, never by arrival order.
//! `Close` and the connection-level `Busy`/fatal-`Error` frames carry no
//! id (fatal errors use id `0`, which no request may use).
//!
//! Frames larger than [`MAX_FRAME`] are rejected before any allocation,
//! so a malformed or hostile length prefix cannot balloon memory;
//! truncated frames and trailing garbage surface as [`ProtoError`]s.
//! The server decodes incrementally from nonblocking sockets via
//! [`FrameDecoder`]; the blocking [`read_frame`]/[`write_frame`] pair
//! remains for the client side and tests.

use std::fmt;
use std::io::{self, Read, Write};

use rbat::{Date, Oid, Value};

/// Wire protocol version spoken by this crate. Bumped to 2 when request
/// ids and the handshake were introduced; the handshake rejects any
/// other version with a fatal `Error` frame.
pub const PROTOCOL_VERSION: u32 = 2;

/// Hard cap on one frame's payload (16 MiB) — rejects hostile length
/// prefixes before allocating.
pub const MAX_FRAME: usize = 16 << 20;

/// Wire protocol errors (framing, decoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The stream ended inside a frame (or inside a body field).
    Truncated,
    /// A frame length prefix exceeded [`MAX_FRAME`].
    TooLarge(u64),
    /// Structurally invalid payload (unknown tag, bad UTF-8, trailing
    /// bytes, unencodable value).
    Malformed(String),
    /// The read deadline expired mid-frame (slow-loris guard: see
    /// `ServerConfig::read_timeout`). Distinguished from [`Self::Io`] so
    /// the serving loop can close the connection with a typed error
    /// frame instead of treating it as a transport fault.
    Timeout,
    /// Transport error.
    Io(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
            ProtoError::Timeout => write!(f, "read timed out"),
            ProtoError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => ProtoError::Truncated,
            // Both kinds occur for an expired SO_RCVTIMEO depending on
            // platform; fold them into one typed timeout.
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ProtoError::Timeout,
            _ => ProtoError::Io(e.to_string()),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The connection handshake: first frame on every connection,
    /// carrying the client's protocol version. Answered with
    /// [`Response::Hello`] (or a fatal `Error` on mismatch).
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Run the named prepared template with the given parameters.
    Query {
        /// Request id echoed on the response (nonzero).
        id: u64,
        /// Template name (registered on the `Database`).
        template: String,
        /// Parameter values.
        params: Vec<Value>,
        /// Soft deadline budget in milliseconds; `0` means none. The
        /// clock starts when the frame is decoded (so time queued behind
        /// earlier pipelined requests counts) and is enforced at the
        /// recycler's admission/eviction wait points server-side — past
        /// it the reply is an `Error` frame reporting the deadline,
        /// never a partial result.
        deadline_ms: u64,
    },
    /// Commit inserts/deletes against one table.
    Commit {
        /// Request id echoed on the response (nonzero).
        id: u64,
        /// Target table.
        table: String,
        /// Rows to append.
        inserts: Vec<Vec<Value>>,
        /// OIDs to delete.
        deletes: Vec<u64>,
    },
    /// Fetch server-wide recycler statistics. Answered out of band by
    /// the reactor — it may overtake earlier pipelined queries.
    Stats {
        /// Request id echoed on the response (nonzero).
        id: u64,
    },
    /// Close the connection (the server answers everything already in
    /// flight, replies `Closed` and hangs up).
    Close,
}

impl Request {
    /// The request id, if this request kind carries one.
    pub fn id(&self) -> Option<u64> {
        match self {
            Request::Query { id, .. } | Request::Commit { id, .. } | Request::Stats { id } => {
                Some(*id)
            }
            Request::Hello { .. } | Request::Close => None,
        }
    }
}

/// A query's result set plus its recycling observations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Named exports in export order.
    pub exports: Vec<(String, Value)>,
    /// Marked instructions this invocation saw.
    pub marked: u64,
    /// ... answered from the recycle pool.
    pub reused: u64,
    /// ... executed in subsumed form.
    pub subsumed: u64,
    /// Entries this invocation admitted.
    pub admitted: u64,
    /// Server-side wall time, microseconds.
    pub elapsed_us: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted: the server's protocol version.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Query succeeded.
    Query {
        /// Echo of the request id.
        id: u64,
        /// The result set and recycling observations.
        result: QueryResult,
    },
    /// Commit succeeded.
    Commit {
        /// Echo of the request id.
        id: u64,
        /// Rows appended.
        inserted: u64,
        /// Rows deleted.
        deleted: u64,
        /// Catalog epoch after the commit.
        epoch: u64,
    },
    /// Statistics snapshot as name/value pairs.
    Stats {
        /// Echo of the request id.
        id: u64,
        /// Counter name/value pairs.
        pairs: Vec<(String, u64)>,
    },
    /// Goodbye (reply to `Close`).
    Closed,
    /// Connection-level admission control turned this connection away
    /// (the server is at its connection limit).
    Busy {
        /// Human-readable reason.
        reason: String,
    },
    /// A request failed server-side. `id` names the failed request; id
    /// `0` is a **fatal** connection-level error (protocol violation,
    /// handshake rejection, read timeout) after which the server hangs
    /// up.
    Error {
        /// Echo of the failed request id, or `0` for a fatal
        /// connection-level error.
        id: u64,
        /// Error rendering.
        message: String,
    },
}

impl Response {
    /// The echoed request id, if this response kind carries one.
    pub fn id(&self) -> Option<u64> {
        match self {
            Response::Query { id, .. }
            | Response::Commit { id, .. }
            | Response::Stats { id, .. }
            | Response::Error { id, .. } => Some(*id),
            Response::Hello { .. } | Response::Closed | Response::Busy { .. } => None,
        }
    }
}

// ----- frame transport (blocking; the client side) --------------------------

/// Write one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() > MAX_FRAME {
        return Err(ProtoError::TooLarge(payload.len() as u64));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload. `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between messages); [`ProtoError::Truncated`]
/// on EOF *inside* a frame — including inside the 4-byte length prefix,
/// which `read_exact` alone cannot distinguish from a clean close.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len = [0u8; 4];
    let mut got = 0usize;
    while got < len.len() {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None), // clean frame-boundary EOF
            Ok(0) => return Err(ProtoError::Truncated), // EOF inside the prefix
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::TooLarge(len as u64));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ----- incremental frame decoding (the reactor side) ------------------------

/// Incremental frame decoder for nonblocking sockets: feed it whatever
/// bytes `read()` produced ([`Self::push`]), pull complete frame
/// payloads out ([`Self::next_frame`]). Byte-at-a-time feeding decodes
/// exactly what [`read_frame`] would decode from the whole buffer
/// (pinned by a property test).
///
/// A hostile length prefix is rejected as soon as its 4 bytes are in
/// hand — **before** any body allocation — and the body buffer grows
/// only as bytes actually arrive, so memory is bounded by what the peer
/// really sent, never by what it announced.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Partial little-endian length prefix.
    head: [u8; 4],
    /// Prefix bytes received so far (0..=4).
    head_len: usize,
    /// Body length once the prefix is complete.
    need: Option<usize>,
    /// Body bytes received so far.
    body: Vec<u8>,
    /// Completed frames not yet taken: queued rather than returned from
    /// `push` so the reactor can decode everything one `read()` produced
    /// and then drain frames one by one under its backpressure cap.
    done: std::collections::VecDeque<Vec<u8>>,
}

impl FrameDecoder {
    /// A fresh decoder at a frame boundary.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Feed raw bytes from the socket. Completed frame payloads become
    /// available via [`Self::next_frame`]; a hostile length prefix
    /// surfaces here as [`ProtoError::TooLarge`] the moment it is
    /// complete, with nothing allocated for the announced body.
    pub fn push(&mut self, mut chunk: &[u8]) -> Result<(), ProtoError> {
        while !chunk.is_empty() {
            match self.need {
                None => {
                    let take = (4 - self.head_len).min(chunk.len());
                    self.head[self.head_len..self.head_len + take].copy_from_slice(&chunk[..take]);
                    self.head_len += take;
                    chunk = &chunk[take..];
                    if self.head_len == 4 {
                        let len = u32::from_le_bytes(self.head) as usize;
                        if len > MAX_FRAME {
                            return Err(ProtoError::TooLarge(len as u64));
                        }
                        self.need = Some(len);
                    }
                }
                Some(need) => {
                    let take = (need - self.body.len()).min(chunk.len());
                    self.body.extend_from_slice(&chunk[..take]);
                    chunk = &chunk[take..];
                    if self.body.len() == need {
                        self.done.push_back(std::mem::take(&mut self.body));
                        self.head_len = 0;
                        self.need = None;
                    }
                }
            }
        }
        Ok(())
    }

    /// Take the next complete frame payload, if any.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        self.done.pop_front()
    }

    /// True while the decoder sits *inside* a frame (a partial length
    /// prefix or an incomplete body) — the state the slow-loris guard
    /// keys on. False at a clean frame boundary, where an idle
    /// connection must cost nothing.
    pub fn mid_frame(&self) -> bool {
        self.head_len > 0 || self.need.is_some()
    }

    /// Complete frames decoded and not yet taken.
    pub fn ready(&self) -> usize {
        self.done.len()
    }

    /// Bytes currently buffered (partial frame + undelivered frames) —
    /// what an idle connection pays for, which is why an idle one at a
    /// frame boundary reports 0.
    pub fn buffered(&self) -> usize {
        self.head_len + self.body.len() + self.done.iter().map(Vec::len).sum::<usize>()
    }
}

// ----- body encoding --------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode one value. BATs are not wire-encodable — the serving layer
/// summarises them before encoding ([`displayable`]).
fn put_value(out: &mut Vec<u8>, v: &Value) -> Result<(), ProtoError> {
    match v {
        Value::Nil => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(3);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Date(d) => {
            out.push(4);
            out.extend_from_slice(&d.0.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(5);
            put_str(out, s);
        }
        Value::Oid(o) => {
            out.push(6);
            out.extend_from_slice(&o.0.to_le_bytes());
        }
        Value::Bat(_) => {
            return Err(ProtoError::Malformed(
                "BAT values are not wire-encodable".into(),
            ))
        }
    }
    Ok(())
}

/// Replace BAT references by a scalar summary so any export is
/// wire-encodable (a full column transfer is not part of this protocol).
pub fn displayable(v: &Value) -> Value {
    match v {
        Value::Bat(b) => Value::str(&format!("<bat:{} rows>", b.len())),
        other => other.clone(),
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.pos + n > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, ProtoError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Malformed("string is not UTF-8".into()))
    }

    /// A collection length: bounded by the remaining payload so a hostile
    /// count cannot drive a huge allocation.
    fn len(&mut self) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(ProtoError::Truncated);
        }
        Ok(n)
    }

    fn value(&mut self) -> Result<Value, ProtoError> {
        Ok(match self.u8()? {
            0 => Value::Nil,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Date(Date(self.i32()?)),
            5 => Value::Str(self.str()?.into()),
            6 => Value::Oid(Oid(self.u64()?)),
            t => return Err(ProtoError::Malformed(format!("unknown value tag {t}"))),
        })
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_values(out: &mut Vec<u8>, values: &[Value]) -> Result<(), ProtoError> {
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        put_value(out, v)?;
    }
    Ok(())
}

/// Encode a request payload (frame it with [`write_frame`]).
pub fn encode_request(req: &Request) -> Result<Vec<u8>, ProtoError> {
    let mut out = Vec::new();
    match req {
        Request::Query {
            id,
            template,
            params,
            deadline_ms,
        } => {
            out.push(1);
            out.extend_from_slice(&id.to_le_bytes());
            put_str(&mut out, template);
            put_values(&mut out, params)?;
            out.extend_from_slice(&deadline_ms.to_le_bytes());
        }
        Request::Commit {
            id,
            table,
            inserts,
            deletes,
        } => {
            out.push(2);
            out.extend_from_slice(&id.to_le_bytes());
            put_str(&mut out, table);
            out.extend_from_slice(&(inserts.len() as u32).to_le_bytes());
            for row in inserts {
                put_values(&mut out, row)?;
            }
            out.extend_from_slice(&(deletes.len() as u32).to_le_bytes());
            for oid in deletes {
                out.extend_from_slice(&oid.to_le_bytes());
            }
        }
        Request::Stats { id } => {
            out.push(3);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Request::Close => out.push(4),
        Request::Hello { version } => {
            out.push(5);
            out.extend_from_slice(&version.to_le_bytes());
        }
    }
    Ok(out)
}

/// Decode a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        1 => {
            let id = c.u64()?;
            let template = c.str()?;
            let n = c.len()?;
            let params = (0..n).map(|_| c.value()).collect::<Result<_, _>>()?;
            let deadline_ms = c.u64()?;
            Request::Query {
                id,
                template,
                params,
                deadline_ms,
            }
        }
        2 => {
            let id = c.u64()?;
            let table = c.str()?;
            let rows = c.len()?;
            let inserts = (0..rows)
                .map(|_| {
                    let n = c.len()?;
                    (0..n).map(|_| c.value()).collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<_, _>>()?;
            let dels = c.len()?;
            let deletes = (0..dels).map(|_| c.u64()).collect::<Result<_, _>>()?;
            Request::Commit {
                id,
                table,
                inserts,
                deletes,
            }
        }
        3 => Request::Stats { id: c.u64()? },
        4 => Request::Close,
        5 => Request::Hello { version: c.u32()? },
        t => return Err(ProtoError::Malformed(format!("unknown request tag {t}"))),
    };
    c.finish()?;
    Ok(req)
}

/// Encode a response payload (frame it with [`write_frame`]).
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, ProtoError> {
    let mut out = Vec::new();
    match resp {
        Response::Query { id, result: q } => {
            out.push(0x81);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(q.exports.len() as u32).to_le_bytes());
            for (name, v) in &q.exports {
                put_str(&mut out, name);
                put_value(&mut out, v)?;
            }
            for n in [q.marked, q.reused, q.subsumed, q.admitted, q.elapsed_us] {
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
        Response::Commit {
            id,
            inserted,
            deleted,
            epoch,
        } => {
            out.push(0x82);
            for n in [id, inserted, deleted, epoch] {
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
        Response::Stats { id, pairs } => {
            out.push(0x83);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (name, v) in pairs {
                put_str(&mut out, name);
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Closed => out.push(0x84),
        Response::Busy { reason } => {
            out.push(0x85);
            put_str(&mut out, reason);
        }
        Response::Hello { version } => {
            out.push(0x86);
            out.extend_from_slice(&version.to_le_bytes());
        }
        Response::Error { id, message } => {
            out.push(0x80);
            out.extend_from_slice(&id.to_le_bytes());
            put_str(&mut out, message);
        }
    }
    Ok(out)
}

/// Decode a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cursor::new(payload);
    let resp = match c.u8()? {
        0x81 => {
            let id = c.u64()?;
            let n = c.len()?;
            let exports = (0..n)
                .map(|_| Ok((c.str()?, c.value()?)))
                .collect::<Result<_, ProtoError>>()?;
            Response::Query {
                id,
                result: QueryResult {
                    exports,
                    marked: c.u64()?,
                    reused: c.u64()?,
                    subsumed: c.u64()?,
                    admitted: c.u64()?,
                    elapsed_us: c.u64()?,
                },
            }
        }
        0x82 => Response::Commit {
            id: c.u64()?,
            inserted: c.u64()?,
            deleted: c.u64()?,
            epoch: c.u64()?,
        },
        0x83 => {
            let id = c.u64()?;
            let n = c.len()?;
            let pairs = (0..n)
                .map(|_| Ok((c.str()?, c.u64()?)))
                .collect::<Result<_, ProtoError>>()?;
            Response::Stats { id, pairs }
        }
        0x84 => Response::Closed,
        0x85 => Response::Busy { reason: c.str()? },
        0x86 => Response::Hello { version: c.u32()? },
        0x80 => Response::Error {
            id: c.u64()?,
            message: c.str()?,
        },
        t => return Err(ProtoError::Malformed(format!("unknown response tag {t}"))),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Query {
                id: 7,
                template: "nearby".into(),
                params: vec![
                    Value::Int(-5),
                    Value::Float(1.25),
                    Value::str("x"),
                    Value::Nil,
                    Value::Bool(true),
                    Value::Date(Date(7000)),
                    Value::Oid(Oid(42)),
                ],
                deadline_ms: 1500,
            },
            Request::Commit {
                id: u64::MAX,
                table: "t".into(),
                inserts: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
                deletes: vec![0, 9],
            },
            Request::Stats { id: 3 },
            Request::Close,
        ];
        for req in reqs {
            let bytes = encode_request(&req).unwrap();
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Hello {
                version: PROTOCOL_VERSION,
            },
            Response::Query {
                id: 9,
                result: QueryResult {
                    exports: vec![("n".into(), Value::Int(11))],
                    marked: 3,
                    reused: 2,
                    subsumed: 1,
                    admitted: 1,
                    elapsed_us: 99,
                },
            },
            Response::Commit {
                id: 10,
                inserted: 2,
                deleted: 0,
                epoch: 5,
            },
            Response::Stats {
                id: 11,
                pairs: vec![("hits".into(), 7)],
            },
            Response::Closed,
            Response::Busy {
                reason: "full".into(),
            },
            Response::Error {
                id: 0,
                message: "unknown template: zap".into(),
            },
        ];
        for resp in resps {
            let bytes = encode_response(&resp).unwrap();
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn ids_are_echoed_fields() {
        let req = Request::Query {
            id: 42,
            template: "q".into(),
            params: vec![],
            deadline_ms: 0,
        };
        assert_eq!(req.id(), Some(42));
        assert_eq!(Request::Close.id(), None);
        let resp = Response::Stats {
            id: 42,
            pairs: vec![],
        };
        assert_eq!(resp.id(), Some(42));
        assert_eq!(Response::Closed.id(), None);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_request(&Request::Stats { id: 1 }).unwrap();
        bytes.push(0);
        assert!(matches!(
            decode_request(&bytes),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_body_rejected() {
        let bytes = encode_request(&Request::Query {
            id: 1,
            template: "q".into(),
            params: vec![Value::Int(1)],
            deadline_ms: 0,
        })
        .unwrap();
        for cut in 1..bytes.len() {
            let err = decode_request(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtoError::Truncated | ProtoError::Malformed(_)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let mut stream: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0, 0];
        assert!(matches!(
            read_frame(&mut stream),
            Err(ProtoError::TooLarge(_))
        ));
        // the incremental decoder rejects the same prefix the moment it
        // is complete, with nothing buffered for the announced body
        let mut dec = FrameDecoder::new();
        assert!(dec.push(&[0xff, 0xff]).is_ok());
        let err = dec.push(&[0xff, 0xff]).unwrap_err();
        assert!(matches!(err, ProtoError::TooLarge(_)));
    }

    #[test]
    fn eof_between_frames_is_clean_inside_is_truncated() {
        let mut empty: &[u8] = &[];
        assert_eq!(read_frame(&mut empty).unwrap(), None);
        let mut cut: &[u8] = &[8, 0, 0, 0, 1, 2];
        assert!(matches!(read_frame(&mut cut), Err(ProtoError::Truncated)));
        // EOF *inside the length prefix* is truncation too, not a clean
        // close — read_exact alone cannot tell the two apart
        for n in 1..4 {
            let mut prefix_cut: &[u8] = &[9, 0, 0][..n];
            assert!(
                matches!(read_frame(&mut prefix_cut), Err(ProtoError::Truncated)),
                "EOF after {n} prefix bytes must be Truncated"
            );
        }
    }

    #[test]
    fn incremental_decoder_matches_blocking_reader() {
        // a few frames back-to-back, fed in awkward chunk sizes
        let mut stream = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![1], vec![2; 300], vec![3; 7]];
        for p in &payloads {
            write_frame(&mut stream, p).unwrap();
        }
        for chunk in [1usize, 3, 5, 1024] {
            let mut dec = FrameDecoder::new();
            for piece in stream.chunks(chunk) {
                dec.push(piece).unwrap();
            }
            let mut got = Vec::new();
            while let Some(f) = dec.next_frame() {
                got.push(f);
            }
            assert_eq!(got, payloads, "chunk size {chunk}");
            assert!(!dec.mid_frame());
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn decoder_mid_frame_tracks_partial_state() {
        let mut dec = FrameDecoder::new();
        assert!(!dec.mid_frame());
        dec.push(&[5, 0]).unwrap(); // half a prefix
        assert!(dec.mid_frame());
        dec.push(&[0, 0]).unwrap(); // prefix complete, body outstanding
        assert!(dec.mid_frame());
        dec.push(&[9, 9, 9, 9]).unwrap(); // 4 of 5 body bytes
        assert!(dec.mid_frame());
        dec.push(&[9]).unwrap(); // frame complete
        assert!(!dec.mid_frame());
        assert_eq!(dec.next_frame().unwrap(), vec![9; 5]);
    }

    #[test]
    fn bats_are_not_encodable_but_displayable() {
        use std::sync::Arc;
        let bat = Arc::new(rbat::Bat::from_tail(rbat::Column::from_ints(vec![1, 2, 3])));
        let v = Value::Bat(bat);
        assert!(encode_response(&Response::Query {
            id: 1,
            result: QueryResult {
                exports: vec![("b".into(), v.clone())],
                ..Default::default()
            }
        })
        .is_err());
        assert_eq!(displayable(&v), Value::str("<bat:3 rows>"));
    }
}
