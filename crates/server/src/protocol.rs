//! The wire protocol: length-prefixed frames over a byte stream.
//!
//! Every message is one **frame**: a little-endian `u32` payload length
//! followed by that many payload bytes. Payloads are a tag byte plus a
//! tag-specific body; all integers are little-endian, floats travel as
//! IEEE-754 bit patterns, strings as `u32` length + UTF-8 bytes. The
//! protocol is deliberately tiny and hand-rolled — the build is fully
//! offline (no serde, no tokio) and the paper's serving story needs
//! exactly four requests: query, commit, stats, close.
//!
//! Frames larger than [`MAX_FRAME`] are rejected before any allocation,
//! so a malformed or hostile length prefix cannot balloon memory;
//! truncated frames and trailing garbage surface as [`ProtoError`]s.

use std::fmt;
use std::io::{self, Read, Write};

use rbat::{Date, Oid, Value};

/// Hard cap on one frame's payload (16 MiB) — rejects hostile length
/// prefixes before allocating.
pub const MAX_FRAME: usize = 16 << 20;

/// Wire protocol errors (framing, decoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The stream ended inside a frame (or inside a body field).
    Truncated,
    /// A frame length prefix exceeded [`MAX_FRAME`].
    TooLarge(u64),
    /// Structurally invalid payload (unknown tag, bad UTF-8, trailing
    /// bytes, unencodable value).
    Malformed(String),
    /// The socket's read deadline expired mid-frame (slow-loris guard:
    /// see `ServerConfig::read_timeout`). Distinguished from [`Self::Io`]
    /// so the serving loop can close the connection with a typed error
    /// frame instead of treating it as a transport fault.
    Timeout,
    /// Transport error.
    Io(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
            ProtoError::Timeout => write!(f, "read timed out"),
            ProtoError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => ProtoError::Truncated,
            // Both kinds occur for an expired SO_RCVTIMEO depending on
            // platform; fold them into one typed timeout.
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ProtoError::Timeout,
            _ => ProtoError::Io(e.to_string()),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run the named prepared template with the given parameters.
    Query {
        /// Template name (registered on the `Database`).
        template: String,
        /// Parameter values.
        params: Vec<Value>,
        /// Soft deadline budget in milliseconds; `0` means none. Enforced
        /// at the recycler's admission/eviction wait points server-side —
        /// past it the reply is an `Error` frame reporting the deadline,
        /// never a partial result.
        deadline_ms: u64,
    },
    /// Commit inserts/deletes against one table.
    Commit {
        /// Target table.
        table: String,
        /// Rows to append.
        inserts: Vec<Vec<Value>>,
        /// OIDs to delete.
        deletes: Vec<u64>,
    },
    /// Fetch server-wide recycler statistics.
    Stats,
    /// Close the connection (the server replies `Closed` and hangs up).
    Close,
}

/// A query's result set plus its recycling observations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Named exports in export order.
    pub exports: Vec<(String, Value)>,
    /// Marked instructions this invocation saw.
    pub marked: u64,
    /// ... answered from the recycle pool.
    pub reused: u64,
    /// ... executed in subsumed form.
    pub subsumed: u64,
    /// Entries this invocation admitted.
    pub admitted: u64,
    /// Server-side wall time, microseconds.
    pub elapsed_us: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Query succeeded.
    Query(QueryResult),
    /// Commit succeeded.
    Commit {
        /// Rows appended.
        inserted: u64,
        /// Rows deleted.
        deleted: u64,
        /// Catalog epoch after the commit.
        epoch: u64,
    },
    /// Statistics snapshot as name/value pairs.
    Stats(Vec<(String, u64)>),
    /// Goodbye (reply to `Close`).
    Closed,
    /// Connection-level admission control turned this connection away
    /// (server at `max_sessions` with a full queue).
    Busy {
        /// Human-readable reason.
        reason: String,
    },
    /// The request failed server-side.
    Error {
        /// Error rendering.
        message: String,
    },
}

// ----- frame transport ------------------------------------------------------

/// Write one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() > MAX_FRAME {
        return Err(ProtoError::TooLarge(payload.len() as u64));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload. `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between messages); [`ProtoError::Truncated`]
/// on EOF *inside* a frame — including inside the 4-byte length prefix,
/// which `read_exact` alone cannot distinguish from a clean close.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len = [0u8; 4];
    let mut got = 0usize;
    while got < len.len() {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None), // clean frame-boundary EOF
            Ok(0) => return Err(ProtoError::Truncated), // EOF inside the prefix
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::TooLarge(len as u64));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ----- body encoding --------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode one value. BATs are not wire-encodable — the serving layer
/// summarises them before encoding ([`displayable`]).
fn put_value(out: &mut Vec<u8>, v: &Value) -> Result<(), ProtoError> {
    match v {
        Value::Nil => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(3);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Date(d) => {
            out.push(4);
            out.extend_from_slice(&d.0.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(5);
            put_str(out, s);
        }
        Value::Oid(o) => {
            out.push(6);
            out.extend_from_slice(&o.0.to_le_bytes());
        }
        Value::Bat(_) => {
            return Err(ProtoError::Malformed(
                "BAT values are not wire-encodable".into(),
            ))
        }
    }
    Ok(())
}

/// Replace BAT references by a scalar summary so any export is
/// wire-encodable (a full column transfer is not part of this protocol).
pub fn displayable(v: &Value) -> Value {
    match v {
        Value::Bat(b) => Value::str(&format!("<bat:{} rows>", b.len())),
        other => other.clone(),
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.pos + n > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, ProtoError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Malformed("string is not UTF-8".into()))
    }

    /// A collection length: bounded by the remaining payload so a hostile
    /// count cannot drive a huge allocation.
    fn len(&mut self) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(ProtoError::Truncated);
        }
        Ok(n)
    }

    fn value(&mut self) -> Result<Value, ProtoError> {
        Ok(match self.u8()? {
            0 => Value::Nil,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Date(Date(self.i32()?)),
            5 => Value::Str(self.str()?.into()),
            6 => Value::Oid(Oid(self.u64()?)),
            t => return Err(ProtoError::Malformed(format!("unknown value tag {t}"))),
        })
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_values(out: &mut Vec<u8>, values: &[Value]) -> Result<(), ProtoError> {
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        put_value(out, v)?;
    }
    Ok(())
}

/// Encode a request payload (frame it with [`write_frame`]).
pub fn encode_request(req: &Request) -> Result<Vec<u8>, ProtoError> {
    let mut out = Vec::new();
    match req {
        Request::Query {
            template,
            params,
            deadline_ms,
        } => {
            out.push(1);
            put_str(&mut out, template);
            put_values(&mut out, params)?;
            out.extend_from_slice(&deadline_ms.to_le_bytes());
        }
        Request::Commit {
            table,
            inserts,
            deletes,
        } => {
            out.push(2);
            put_str(&mut out, table);
            out.extend_from_slice(&(inserts.len() as u32).to_le_bytes());
            for row in inserts {
                put_values(&mut out, row)?;
            }
            out.extend_from_slice(&(deletes.len() as u32).to_le_bytes());
            for oid in deletes {
                out.extend_from_slice(&oid.to_le_bytes());
            }
        }
        Request::Stats => out.push(3),
        Request::Close => out.push(4),
    }
    Ok(out)
}

/// Decode a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        1 => {
            let template = c.str()?;
            let n = c.len()?;
            let params = (0..n).map(|_| c.value()).collect::<Result<_, _>>()?;
            let deadline_ms = c.u64()?;
            Request::Query {
                template,
                params,
                deadline_ms,
            }
        }
        2 => {
            let table = c.str()?;
            let rows = c.len()?;
            let inserts = (0..rows)
                .map(|_| {
                    let n = c.len()?;
                    (0..n).map(|_| c.value()).collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<_, _>>()?;
            let dels = c.len()?;
            let deletes = (0..dels).map(|_| c.u64()).collect::<Result<_, _>>()?;
            Request::Commit {
                table,
                inserts,
                deletes,
            }
        }
        3 => Request::Stats,
        4 => Request::Close,
        t => return Err(ProtoError::Malformed(format!("unknown request tag {t}"))),
    };
    c.finish()?;
    Ok(req)
}

/// Encode a response payload (frame it with [`write_frame`]).
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, ProtoError> {
    let mut out = Vec::new();
    match resp {
        Response::Query(q) => {
            out.push(0x81);
            out.extend_from_slice(&(q.exports.len() as u32).to_le_bytes());
            for (name, v) in &q.exports {
                put_str(&mut out, name);
                put_value(&mut out, v)?;
            }
            for n in [q.marked, q.reused, q.subsumed, q.admitted, q.elapsed_us] {
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
        Response::Commit {
            inserted,
            deleted,
            epoch,
        } => {
            out.push(0x82);
            for n in [inserted, deleted, epoch] {
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
        Response::Stats(pairs) => {
            out.push(0x83);
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (name, v) in pairs {
                put_str(&mut out, name);
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Closed => out.push(0x84),
        Response::Busy { reason } => {
            out.push(0x85);
            put_str(&mut out, reason);
        }
        Response::Error { message } => {
            out.push(0x80);
            put_str(&mut out, message);
        }
    }
    Ok(out)
}

/// Decode a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cursor::new(payload);
    let resp = match c.u8()? {
        0x81 => {
            let n = c.len()?;
            let exports = (0..n)
                .map(|_| Ok((c.str()?, c.value()?)))
                .collect::<Result<_, ProtoError>>()?;
            Response::Query(QueryResult {
                exports,
                marked: c.u64()?,
                reused: c.u64()?,
                subsumed: c.u64()?,
                admitted: c.u64()?,
                elapsed_us: c.u64()?,
            })
        }
        0x82 => Response::Commit {
            inserted: c.u64()?,
            deleted: c.u64()?,
            epoch: c.u64()?,
        },
        0x83 => {
            let n = c.len()?;
            let pairs = (0..n)
                .map(|_| Ok((c.str()?, c.u64()?)))
                .collect::<Result<_, ProtoError>>()?;
            Response::Stats(pairs)
        }
        0x84 => Response::Closed,
        0x85 => Response::Busy { reason: c.str()? },
        0x80 => Response::Error { message: c.str()? },
        t => return Err(ProtoError::Malformed(format!("unknown response tag {t}"))),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Query {
                template: "nearby".into(),
                params: vec![
                    Value::Int(-5),
                    Value::Float(1.25),
                    Value::str("x"),
                    Value::Nil,
                    Value::Bool(true),
                    Value::Date(Date(7000)),
                    Value::Oid(Oid(42)),
                ],
                deadline_ms: 1500,
            },
            Request::Commit {
                table: "t".into(),
                inserts: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
                deletes: vec![0, 9],
            },
            Request::Stats,
            Request::Close,
        ];
        for req in reqs {
            let bytes = encode_request(&req).unwrap();
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Query(QueryResult {
                exports: vec![("n".into(), Value::Int(11))],
                marked: 3,
                reused: 2,
                subsumed: 1,
                admitted: 1,
                elapsed_us: 99,
            }),
            Response::Commit {
                inserted: 2,
                deleted: 0,
                epoch: 5,
            },
            Response::Stats(vec![("hits".into(), 7)]),
            Response::Closed,
            Response::Busy {
                reason: "full".into(),
            },
            Response::Error {
                message: "unknown template: zap".into(),
            },
        ];
        for resp in resps {
            let bytes = encode_response(&resp).unwrap();
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_request(&Request::Stats).unwrap();
        bytes.push(0);
        assert!(matches!(
            decode_request(&bytes),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_body_rejected() {
        let bytes = encode_request(&Request::Query {
            template: "q".into(),
            params: vec![Value::Int(1)],
            deadline_ms: 0,
        })
        .unwrap();
        for cut in 1..bytes.len() {
            let err = decode_request(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtoError::Truncated | ProtoError::Malformed(_)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let mut stream: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0, 0];
        assert!(matches!(
            read_frame(&mut stream),
            Err(ProtoError::TooLarge(_))
        ));
    }

    #[test]
    fn eof_between_frames_is_clean_inside_is_truncated() {
        let mut empty: &[u8] = &[];
        assert_eq!(read_frame(&mut empty).unwrap(), None);
        let mut cut: &[u8] = &[8, 0, 0, 0, 1, 2];
        assert!(matches!(read_frame(&mut cut), Err(ProtoError::Truncated)));
        // EOF *inside the length prefix* is truncation too, not a clean
        // close — read_exact alone cannot tell the two apart
        for n in 1..4 {
            let mut prefix_cut: &[u8] = &[9, 0, 0][..n];
            assert!(
                matches!(read_frame(&mut prefix_cut), Err(ProtoError::Truncated)),
                "EOF after {n} prefix bytes must be Truncated"
            );
        }
    }

    #[test]
    fn bats_are_not_encodable_but_displayable() {
        use std::sync::Arc;
        let bat = Arc::new(rbat::Bat::from_tail(rbat::Column::from_ints(vec![1, 2, 3])));
        let v = Value::Bat(bat);
        assert!(encode_response(&Response::Query(QueryResult {
            exports: vec![("b".into(), v.clone())],
            ..Default::default()
        }))
        .is_err());
        assert_eq!(displayable(&v), Value::str("<bat:3 rows>"));
    }
}
