//! A thin `libc`-style shim over the Linux readiness syscalls the
//! reactor needs: `epoll`, `eventfd` and the fd rlimit. Hand-rolled
//! `extern "C"` declarations keep the build fully offline (no `libc`
//! crate); everything unsafe is wrapped here behind small safe types so
//! the reactor itself contains no `unsafe`.

use std::io;
use std::os::unix::io::RawFd;

// ----- raw ABI --------------------------------------------------------------

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;

const EFD_NONBLOCK: i32 = 0x800;
const EFD_CLOEXEC: i32 = 0x80000;

const RLIMIT_NOFILE: i32 = 7;

/// `struct epoll_event`. On x86-64 the kernel ABI packs it (no padding
/// between `events` and `data`); on other architectures it is naturally
/// aligned. Fields are only ever accessed by copy, never by reference,
/// so the packed layout is safe to use.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLL*`).
    pub events: u32,
    /// Caller-chosen token carried back on every event.
    pub data: u64,
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ----- safe wrappers --------------------------------------------------------

/// An epoll instance (closed on drop).
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    /// Register `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change `fd`'s interest mask.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Wait for readiness events, filling `events`; `timeout` of `None`
    /// blocks indefinitely. Returns the filled prefix. `EINTR` is
    /// surfaced as an empty slice (the reactor simply loops).
    pub fn wait<'a>(
        &self,
        events: &'a mut [EpollEvent],
        timeout: Option<std::time::Duration>,
    ) -> io::Result<&'a [EpollEvent]> {
        let timeout_ms = match timeout {
            // round up so a 0.5ms deadline does not busy-spin at 0
            Some(t) => i32::try_from(t.as_millis().max(1)).unwrap_or(i32::MAX),
            None => -1,
        };
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        match cvt(n) {
            Ok(n) => Ok(&events[..n as usize]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(&events[..0]),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A nonblocking `eventfd` used to kick the reactor out of `epoll_wait`
/// from worker threads (closed on drop).
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// `eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)`.
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
        Ok(EventFd { fd })
    }

    /// The fd to register with [`Epoll::add`].
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Wake the reactor (adds 1 to the counter; idempotent for this
    /// purpose — coalesced wakes are fine).
    pub fn notify(&self) {
        let one = 1u64.to_ne_bytes();
        unsafe { write(self.fd, one.as_ptr(), one.len()) };
    }

    /// Consume all pending wakes (nonblocking read of the counter).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// Raise the soft `RLIMIT_NOFILE` toward the hard limit (the most an
/// unprivileged process may grant itself) and return the resulting soft
/// limit. The c10k bench and smoke tests call this so thousands of
/// sockets don't trip the default 1024-fd soft cap.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur < lim.rlim_max {
        let raised = Rlimit {
            rlim_cur: lim.rlim_max,
            rlim_max: lim.rlim_max,
        };
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &raised) })?;
        return Ok(raised.rlim_cur);
    }
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.fd(), EPOLLIN, 7).unwrap();
        let mut buf = [EpollEvent { events: 0, data: 0 }; 4];
        // nothing pending: times out empty
        let got = ep.wait(&mut buf, Some(Duration::from_millis(5))).unwrap();
        assert!(got.is_empty());
        ev.notify();
        let got = ep.wait(&mut buf, Some(Duration::from_millis(100))).unwrap();
        assert_eq!(got.len(), 1);
        let (events, data) = (got[0].events, got[0].data);
        assert_ne!(events & EPOLLIN, 0);
        assert_eq!(data, 7);
        ev.drain();
        // drained: back to empty
        let got = ep.wait(&mut buf, Some(Duration::from_millis(5))).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn nofile_limit_is_queryable() {
        let n = raise_nofile_limit().unwrap();
        assert!(n >= 1024, "soft nofile limit unexpectedly tiny: {n}");
    }
}
