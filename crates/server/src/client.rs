//! A blocking client for the wire protocol with a **pipelined** API:
//! the classic call-and-wait methods ([`Client::query`],
//! [`Client::commit`], [`Client::stats`]) plus a send/receive split
//! ([`Client::send_query`] → [`Client::recv_query`], and batched
//! [`Client::query_many`]) that keeps many requests in flight on one
//! connection.
//!
//! Responses may arrive **out of order** (the server answers `Stats`
//! out of band, ahead of queued queries), so every receive matches by
//! request id: frames for other outstanding requests are parked in a
//! held-responses map and handed out when their turn comes.
//!
//! # Pipelining, worked example
//!
//! ```no_run
//! use rbat::Value;
//! use rcy_server::Client;
//!
//! # fn main() -> Result<(), rcy_server::ClientError> {
//! let mut client = Client::connect("127.0.0.1:4444")?; // handshakes v2
//!
//! // Ship three queries without waiting for any answer ...
//! let a = client.send_query("count_range", &[Value::Int(0), Value::Int(100)])?;
//! let b = client.send_query("count_range", &[Value::Int(50), Value::Int(150)])?;
//! let c = client.send_query("count_range", &[Value::Int(0), Value::Int(500)])?;
//!
//! // ... and collect them in any order you like: each recv matches its
//! // request id, parking frames that belong to the others.
//! let rc = client.recv_query(c)?;
//! let ra = client.recv_query(a)?;
//! let rb = client.recv_query(b)?;
//! println!("{:?} {:?} {:?}", ra.exports, rb.exports, rc.exports);
//!
//! // Or batched: one flush, all in flight together.
//! let params: Vec<Vec<Value>> = (0..8).map(|i| vec![Value::Int(i), Value::Int(i + 40)]).collect();
//! let batch: Vec<(&str, &[Value])> =
//!     params.iter().map(|p| ("count_range", p.as_slice())).collect();
//! for result in client.query_many(&batch)? {
//!     println!("n = {:?}", result.exports[0].1);
//! }
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt;
use std::io::{BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use rbat::Value;

use crate::protocol::{
    decode_response, encode_request, read_frame, ProtoError, QueryResult, Request, Response,
    MAX_FRAME, PROTOCOL_VERSION,
};

/// Client-side request failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Transport / framing / decoding failure.
    Proto(ProtoError),
    /// The server turned the connection away (admission control).
    Busy(String),
    /// The server executed the request and reported an error.
    Remote(String),
    /// The server answered with a response of the wrong kind.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Busy(r) => write!(f, "server busy: {r}"),
            ClientError::Remote(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Proto(e.into())
    }
}

/// Retry discipline for [`Client::connect_with_retry`]: up to `attempts`
/// connection attempts, sleeping an exponentially growing, jittered
/// backoff between them. The jitter is a deterministic xorshift stream
/// seeded by `seed`, so a fleet of clients started from distinct seeds
/// de-synchronises (no thundering herd on a recovering server) while any
/// single run stays exactly reproducible.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum connection attempts (≥ 1; 0 behaves as 1).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base: Duration,
    /// Ceiling on any one backoff sleep (pre-jitter).
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 1,
        }
    }
}

/// One connection to a [`crate::Server`], speaking protocol v2: the
/// constructor performs the `Hello` handshake (which is also where a
/// `Busy` rejection surfaces), and every request carries an id so
/// multiple requests can ride the connection concurrently — see the
/// [module docs](self) for the pipelining worked example.
///
/// The server executes one connection's `Query`/`Commit` requests
/// strictly in send order on one dedicated session, so consecutive
/// requests see each other's effects even when pipelined. `Stats` is
/// answered out of band and may overtake them.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// Responses read while waiting for a different id — parked until
    /// their request's `recv_*` comes asking.
    held: HashMap<u64, Response>,
}

impl Client {
    /// Connect and handshake. Fails with [`ClientError::Busy`] when the
    /// server is at its connection limit (the rejection arrives in place
    /// of the handshake ack) and [`ClientError::Remote`] on a protocol
    /// version mismatch.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        let mut client = Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
            held: HashMap::new(),
        };
        client.send_raw(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        client.writer.flush().map_err(ProtoError::from)?;
        match client.read_response()? {
            Response::Hello { version } if version == PROTOCOL_VERSION => Ok(client),
            Response::Hello { version } => Err(ClientError::Unexpected(format!(
                "server speaks protocol v{version}, client v{PROTOCOL_VERSION}"
            ))),
            Response::Busy { reason } => Err(ClientError::Busy(reason)),
            Response::Error { message, .. } => Err(ClientError::Remote(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Connect, retrying [`ClientError::Busy`] rejections and transport
    /// failures with jittered exponential backoff per `policy`. Under
    /// protocol v2 a `Busy` rejection arrives in place of the handshake
    /// ack, so a plain [`Client::connect`] per attempt suffices. Returns
    /// the last error when every attempt is turned away.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        policy: RetryPolicy,
    ) -> Result<Client, ClientError> {
        let mut jitter = policy.seed | 1; // xorshift state must be nonzero
        let mut backoff = policy.base;
        let mut last = ClientError::Busy("no attempts made".into());
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                // jitter in [50%, 100%] of the nominal backoff
                jitter ^= jitter << 13;
                jitter ^= jitter >> 7;
                jitter ^= jitter << 17;
                let half = backoff.min(policy.cap).as_nanos() as u64 / 2;
                let extra = if half == 0 { 0 } else { jitter % (half + 1) };
                std::thread::sleep(Duration::from_nanos(half + extra));
                backoff = backoff.saturating_mul(2);
            }
            match Client::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e @ (ClientError::Busy(_) | ClientError::Proto(_))) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    // ----- pipelined API ----------------------------------------------------

    /// Ship a query without waiting for the answer; returns the request
    /// id to pass to [`Self::recv_query`]. The frame is buffered — it
    /// reaches the wire at the next [`Self::flush`] or receive.
    pub fn send_query(&mut self, template: &str, params: &[Value]) -> Result<u64, ClientError> {
        self.send_query_with_deadline(template, params, None)
    }

    /// [`Self::send_query`] with a server-enforced soft deadline,
    /// measured server-side from when the frame is decoded — time spent
    /// queued behind earlier pipelined requests counts.
    pub fn send_query_with_deadline(
        &mut self,
        template: &str,
        params: &[Value],
        budget: Option<Duration>,
    ) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        self.send_raw(&Request::Query {
            id,
            template: template.to_string(),
            params: params.to_vec(),
            deadline_ms: budget.map_or(0, |b| (b.as_millis() as u64).max(1)),
        })?;
        Ok(id)
    }

    /// Ship a commit without waiting; returns the id for
    /// [`Self::recv_commit`].
    pub fn send_commit(
        &mut self,
        table: &str,
        inserts: Vec<Vec<Value>>,
        deletes: Vec<u64>,
    ) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        self.send_raw(&Request::Commit {
            id,
            table: table.to_string(),
            inserts,
            deletes,
        })?;
        Ok(id)
    }

    /// Ship a stats request without waiting; returns the id for
    /// [`Self::recv_stats`]. The server answers stats out of band — this
    /// response may overtake queries sent before it.
    pub fn send_stats(&mut self) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        self.send_raw(&Request::Stats { id })?;
        Ok(id)
    }

    /// Push every buffered request onto the wire. Receives flush
    /// implicitly; call this when you want requests moving before you
    /// are ready to collect answers.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush().map_err(ProtoError::from)?;
        Ok(())
    }

    /// Wait for the query response with this id (parking any other
    /// responses that arrive first).
    pub fn recv_query(&mut self, id: u64) -> Result<QueryResult, ClientError> {
        match self.recv(id)? {
            Response::Query { result, .. } => Ok(result),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Wait for the commit response with this id; returns
    /// `(inserted, deleted, epoch)`.
    pub fn recv_commit(&mut self, id: u64) -> Result<(u64, u64, u64), ClientError> {
        match self.recv(id)? {
            Response::Commit {
                inserted,
                deleted,
                epoch,
                ..
            } => Ok((inserted, deleted, epoch)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Wait for the stats response with this id.
    pub fn recv_stats(&mut self, id: u64) -> Result<Vec<(String, u64)>, ClientError> {
        match self.recv(id)? {
            Response::Stats { pairs, .. } => Ok(pairs),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Run a batch of queries pipelined: all shipped in one flush, all
    /// in flight together, answers collected by id. Results come back in
    /// batch order regardless of completion order. One failed query
    /// fails the call (its error), matching the batch-or-nothing shape
    /// tests want; pipeline manually with [`Self::send_query`] for
    /// per-request error handling.
    pub fn query_many(
        &mut self,
        batch: &[(&str, &[Value])],
    ) -> Result<Vec<QueryResult>, ClientError> {
        let ids: Vec<u64> = batch
            .iter()
            .map(|(template, params)| self.send_query(template, params))
            .collect::<Result<_, _>>()?;
        ids.into_iter().map(|id| self.recv_query(id)).collect()
    }

    // ----- blocking API -----------------------------------------------------

    /// Run the named prepared template with parameters (send + receive).
    pub fn query(&mut self, template: &str, params: &[Value]) -> Result<QueryResult, ClientError> {
        let id = self.send_query(template, params)?;
        self.recv_query(id)
    }

    /// [`Self::query`] with a server-enforced soft deadline: past
    /// `budget` the server stops admitting/waiting on the recycler and
    /// answers with a deadline error instead of a partial result (which
    /// surfaces here as [`ClientError::Remote`]).
    pub fn query_with_deadline(
        &mut self,
        template: &str,
        params: &[Value],
        budget: Duration,
    ) -> Result<QueryResult, ClientError> {
        let id = self.send_query_with_deadline(template, params, Some(budget))?;
        self.recv_query(id)
    }

    /// Commit inserts/deletes against one table; returns
    /// `(inserted, deleted, epoch)`.
    pub fn commit(
        &mut self,
        table: &str,
        inserts: Vec<Vec<Value>>,
        deletes: Vec<u64>,
    ) -> Result<(u64, u64, u64), ClientError> {
        let id = self.send_commit(table, inserts, deletes)?;
        self.recv_commit(id)
    }

    /// Fetch the server-wide statistics snapshot as name/value pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        let id = self.send_stats()?;
        self.recv_stats(id)
    }

    /// Close the connection cleanly: everything still in flight is
    /// answered (and discarded here), then the server replies `Closed`
    /// and hangs up.
    pub fn close(mut self) -> Result<(), ClientError> {
        self.send_raw(&Request::Close)?;
        self.flush()?;
        loop {
            match self.read_response()? {
                Response::Closed => return Ok(()),
                Response::Busy { reason } => return Err(ClientError::Busy(reason)),
                Response::Error { id: 0, message } => return Err(ClientError::Remote(message)),
                _ => continue, // drain answers to still-in-flight requests
            }
        }
    }

    // ----- plumbing ---------------------------------------------------------

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn send_raw(&mut self, req: &Request) -> Result<(), ClientError> {
        let payload = encode_request(req)?;
        if payload.len() > MAX_FRAME {
            return Err(ClientError::Proto(ProtoError::TooLarge(
                payload.len() as u64
            )));
        }
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())
            .map_err(ProtoError::from)?;
        self.writer.write_all(&payload).map_err(ProtoError::from)?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut self.reader)?.ok_or(ProtoError::Truncated)?;
        Ok(decode_response(&payload)?)
    }

    /// Read until the response for `id` arrives, parking responses that
    /// belong to other outstanding requests. A connection-fatal error
    /// (id 0) or `Busy` fails this call whoever it was aimed at.
    fn recv(&mut self, id: u64) -> Result<Response, ClientError> {
        if let Some(resp) = self.held.remove(&id) {
            return finish(resp);
        }
        self.flush()?;
        loop {
            let resp = self.read_response()?;
            match resp.id() {
                Some(rid) if rid == id => return finish(resp),
                Some(0) => {
                    if let Response::Error { message, .. } = resp {
                        return Err(ClientError::Remote(message));
                    }
                }
                Some(rid) => {
                    self.held.insert(rid, resp);
                }
                None => match resp {
                    Response::Busy { reason } => return Err(ClientError::Busy(reason)),
                    other => return Err(ClientError::Unexpected(format!("{other:?}"))),
                },
            }
        }
    }
}

fn finish(resp: Response) -> Result<Response, ClientError> {
    match resp {
        Response::Error { message, .. } => Err(ClientError::Remote(message)),
        other => Ok(other),
    }
}
