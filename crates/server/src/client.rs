//! A minimal blocking client for the wire protocol — what tests, the
//! bench harness and command-line poking use.

use std::fmt;
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use rbat::Value;

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, ProtoError, QueryResult, Request,
    Response,
};

/// Client-side request failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Transport / framing / decoding failure.
    Proto(ProtoError),
    /// The server turned the connection away (admission control).
    Busy(String),
    /// The server executed the request and reported an error.
    Remote(String),
    /// The server answered with a response of the wrong kind.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Busy(r) => write!(f, "server busy: {r}"),
            ClientError::Remote(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Proto(e.into())
    }
}

/// Retry discipline for [`Client::connect_with_retry`]: up to `attempts`
/// connection attempts, sleeping an exponentially growing, jittered
/// backoff between them. The jitter is a deterministic xorshift stream
/// seeded by `seed`, so a fleet of clients started from distinct seeds
/// de-synchronises (no thundering herd on a recovering server) while any
/// single run stays exactly reproducible.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum connection attempts (≥ 1; 0 behaves as 1).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base: Duration,
    /// Ceiling on any one backoff sleep (pre-jitter).
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 1,
        }
    }
}

/// One connection to a [`crate::Server`]; the server serves it with one
/// dedicated database session, so consecutive requests see each other's
/// effects (and the session's credit slice is this connection's).
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a serving address.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Connect, retrying [`ClientError::Busy`] rejections and transport
    /// failures with jittered exponential backoff per `policy`. Each
    /// attempt is probed with a `Stats` request — a `Busy` frame arrives
    /// only in response to traffic, so a bare `connect()` cannot see it.
    /// The probe also warms the connection's dedicated session. Returns
    /// the last error when every attempt is turned away.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        policy: RetryPolicy,
    ) -> Result<Client, ClientError> {
        let mut jitter = policy.seed | 1; // xorshift state must be nonzero
        let mut backoff = policy.base;
        let mut last = ClientError::Busy("no attempts made".into());
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                // jitter in [50%, 100%] of the nominal backoff
                jitter ^= jitter << 13;
                jitter ^= jitter >> 7;
                jitter ^= jitter << 17;
                let half = backoff.min(policy.cap).as_nanos() as u64 / 2;
                let extra = if half == 0 { 0 } else { jitter % (half + 1) };
                std::thread::sleep(Duration::from_nanos(half + extra));
                backoff = backoff.saturating_mul(2);
            }
            match Client::connect(addr.clone()) {
                Ok(mut client) => match client.stats() {
                    Ok(_) => return Ok(client),
                    Err(e @ (ClientError::Busy(_) | ClientError::Proto(_))) => last = e,
                    Err(e) => return Err(e),
                },
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &encode_request(req)?)?;
        let payload = read_frame(&mut self.reader)?.ok_or(ProtoError::Truncated)?;
        let resp = decode_response(&payload)?;
        match resp {
            Response::Busy { reason } => Err(ClientError::Busy(reason)),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Ok(other),
        }
    }

    /// Run the named prepared template with parameters.
    pub fn query(&mut self, template: &str, params: &[Value]) -> Result<QueryResult, ClientError> {
        match self.roundtrip(&Request::Query {
            template: template.to_string(),
            params: params.to_vec(),
            deadline_ms: 0,
        })? {
            Response::Query(q) => Ok(q),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// [`Self::query`] with a server-enforced soft deadline: past
    /// `budget` the server stops admitting/waiting on the recycler and
    /// answers with a deadline error instead of a partial result (which
    /// surfaces here as [`ClientError::Remote`]).
    pub fn query_with_deadline(
        &mut self,
        template: &str,
        params: &[Value],
        budget: Duration,
    ) -> Result<QueryResult, ClientError> {
        match self.roundtrip(&Request::Query {
            template: template.to_string(),
            params: params.to_vec(),
            deadline_ms: (budget.as_millis() as u64).max(1),
        })? {
            Response::Query(q) => Ok(q),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Commit inserts/deletes against one table; returns
    /// `(inserted, deleted, epoch)`.
    pub fn commit(
        &mut self,
        table: &str,
        inserts: Vec<Vec<Value>>,
        deletes: Vec<u64>,
    ) -> Result<(u64, u64, u64), ClientError> {
        match self.roundtrip(&Request::Commit {
            table: table.to_string(),
            inserts,
            deletes,
        })? {
            Response::Commit {
                inserted,
                deleted,
                epoch,
            } => Ok((inserted, deleted, epoch)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch the server-wide statistics snapshot as name/value pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Close the connection cleanly (the server replies before hanging
    /// up).
    pub fn close(mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Close)? {
            Response::Closed => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
