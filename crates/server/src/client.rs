//! A minimal blocking client for the wire protocol — what tests, the
//! bench harness and command-line poking use.

use std::fmt;
use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};

use rbat::Value;

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, ProtoError, QueryResult, Request,
    Response,
};

/// Client-side request failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Transport / framing / decoding failure.
    Proto(ProtoError),
    /// The server turned the connection away (admission control).
    Busy(String),
    /// The server executed the request and reported an error.
    Remote(String),
    /// The server answered with a response of the wrong kind.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Busy(r) => write!(f, "server busy: {r}"),
            ClientError::Remote(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Proto(e.into())
    }
}

/// One connection to a [`crate::Server`]; the server serves it with one
/// dedicated database session, so consecutive requests see each other's
/// effects (and the session's credit slice is this connection's).
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a serving address.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &encode_request(req)?)?;
        let payload = read_frame(&mut self.reader)?.ok_or(ProtoError::Truncated)?;
        let resp = decode_response(&payload)?;
        match resp {
            Response::Busy { reason } => Err(ClientError::Busy(reason)),
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Ok(other),
        }
    }

    /// Run the named prepared template with parameters.
    pub fn query(&mut self, template: &str, params: &[Value]) -> Result<QueryResult, ClientError> {
        match self.roundtrip(&Request::Query {
            template: template.to_string(),
            params: params.to_vec(),
        })? {
            Response::Query(q) => Ok(q),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Commit inserts/deletes against one table; returns
    /// `(inserted, deleted, epoch)`.
    pub fn commit(
        &mut self,
        table: &str,
        inserts: Vec<Vec<Value>>,
        deletes: Vec<u64>,
    ) -> Result<(u64, u64, u64), ClientError> {
        match self.roundtrip(&Request::Commit {
            table: table.to_string(),
            inserts,
            deletes,
        })? {
            Response::Commit {
                inserted,
                deleted,
                epoch,
            } => Ok((inserted, deleted, epoch)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch the server-wide statistics snapshot as name/value pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Close the connection cleanly (the server replies before hanging
    /// up).
    pub fn close(mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Close)? {
            Response::Closed => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
