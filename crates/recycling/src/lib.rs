//! # recycling — the public facade of the recycler engine
//!
//! The paper's recycler is a *server-side* facility: one shared pool
//! inside one database process, fielding many concurrent client sessions
//! (§8 replays the SkyServer query log against one MonetDB instance).
//! This crate is that server's front door. Instead of hand-assembling an
//! engine — picking a constructor, wiring a `CatalogCell`, forking
//! per-thread engines, threading a recycler hook through — an embedder
//! builds one [`Database`] and vends cheap [`Session`] handles:
//!
//! ```
//! use rbat::{Catalog, LogicalType, TableBuilder, Value};
//! use recycling::DatabaseBuilder;
//! use rmal::{ProgramBuilder, P};
//!
//! let mut cat = Catalog::new();
//! let mut tb = TableBuilder::new("t").column("x", LogicalType::Int);
//! for i in 0..1000 { tb.push_row(&[Value::Int(i)]); }
//! cat.add_table(tb.finish());
//!
//! let db = DatabaseBuilder::new(cat).build();
//!
//! let mut b = ProgramBuilder::new("count_range", 2);
//! let col = b.bind("t", "x");
//! let sel = b.select_half_open(col, P(0), P(1));
//! let n = b.count(sel);
//! b.export("n", n);
//! let template = db.prepare(b.finish());
//!
//! let mut session = db.session();
//! let p = [Value::Int(10), Value::Int(500)];
//! let first = session.query(&template, &p).unwrap();
//! let second = session.query(&template, &p).unwrap();
//! assert_eq!(first.export("n"), second.export("n"));
//! assert!(second.reused > 0, "second run reuses intermediates");
//! ```
//!
//! The facade owns three things the old API exposed piecemeal:
//!
//! * **the shared recycler** — pool, credit/ADAPT accounts, statistics;
//!   one per database, shared by all sessions (cross-session reuse is the
//!   whole point);
//! * **the shared catalog cell** — single-writer/multi-reader epoch
//!   snapshots, so [`Session::commit`] from one session becomes visible
//!   to the others at their next query;
//! * **the optimiser pipeline** — [`Database::prepare`] turns a freshly
//!   built program into a recyclable template once; sessions then replay
//!   it with parameters.
//!
//! Sessions carry **per-session credit slices**: with
//! [`RecyclerConfig::session_credits`] configured, each session draws
//! admissions against `budget / active_sessions` (rebalanced as sessions
//! open and close), with an overflow lane so idle slices aren't wasted —
//! one flooding client cannot starve the others' admissions.
//!
//! The `rcy-server` crate puts a TCP front-end on top: a length-prefixed
//! wire protocol (query / commit / stats / close) served by a bounded
//! worker pool, one [`Database::session`] per connection.

#![deny(missing_docs)]

mod database;
mod error;
mod session;

pub use database::{Database, DatabaseBuilder};
pub use error::{Error, Result};
pub use session::{QueryReply, Session, Update};

// The configuration and observability vocabulary callers need alongside
// the facade, re-exported so `use recycling::*` is one-stop.
pub use recycler::{
    AdmissionPolicy, EvictionPolicy, MaintenanceGuard, PoolSnapshot, QueryRecord, RecyclerConfig,
    RecyclerStats, UpdateMode,
};

/// Deterministic fault injection (`--features failpoints` builds only):
/// re-export of [`recycler::fault`] so the TCP front-end and test
/// harnesses can script failures at every layer through one registry.
#[cfg(feature = "failpoints")]
pub use recycler::fault;
