//! The per-client [`Session`] handle and its typed request/reply types.

use std::time::{Duration, Instant};

use rbat::catalog::CommitReport;
use rbat::delta::Row;
use rbat::Value;
use recycler::{QueryRecord, Recycler, RecyclerStats};
use rmal::interp::NoHook;
use rmal::{Engine, Program};

use crate::database::Database;
use crate::error::{Error, Result};

/// A typed update request: staged inserts and deletes against one table,
/// committed atomically by [`Session::commit`].
#[derive(Debug, Clone, Default)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// Rows to append (one `Vec<Value>` per row, in schema order).
    pub inserts: Vec<Row>,
    /// OIDs to delete.
    pub deletes: Vec<u64>,
}

impl Update {
    /// Start an empty update of `table`.
    pub fn to(table: &str) -> Update {
        Update {
            table: table.to_string(),
            ..Default::default()
        }
    }

    /// Builder-style: append rows.
    pub fn insert(mut self, rows: Vec<Row>) -> Update {
        self.inserts.extend(rows);
        self
    }

    /// Builder-style: delete OIDs.
    pub fn delete(mut self, oids: Vec<u64>) -> Update {
        self.deletes.extend(oids);
        self
    }
}

/// The reply to one [`Session::query`]: the exported result values plus
/// the recycling observations of this invocation.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// Named result values, in export order.
    pub exports: Vec<(String, Value)>,
    /// Marked (recyclable) instructions this invocation saw.
    pub marked: u64,
    /// ... of which answered from the recycle pool (exact match).
    pub reused: u64,
    /// ... of which executed in subsumed (rewritten/pieced) form.
    pub subsumed: u64,
    /// Entries this invocation admitted to the pool.
    pub admitted: u64,
    /// Wall-clock time of the invocation.
    pub elapsed: Duration,
}

impl QueryReply {
    /// Fetch an exported value by name.
    pub fn export(&self, name: &str) -> Option<&Value> {
        self.exports.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Hit ratio against this invocation's potential hits.
    pub fn hit_ratio(&self) -> f64 {
        if self.marked == 0 {
            0.0
        } else {
            self.reused as f64 / self.marked as f64
        }
    }
}

/// One engine: recycling sessions carry the recycler hook, naive
/// ([`crate::DatabaseBuilder::naive`]) ones run bare — the baseline the
/// experiment harness compares against. Hidden behind `Session` so the
/// generic hook parameter never leaks into the public API.
enum EngineKind {
    // Boxed: the recycler hook carries per-session admission state, so
    // this variant dwarfs the naive one and would bloat every Session.
    Recycled(Box<Engine<Recycler>>),
    Naive(Engine<NoHook>),
}

/// A cheap per-client handle on a [`Database`]: typed requests
/// ([`Self::query`], [`Self::commit`], [`Self::stats`]) against the
/// database's shared recycler and catalog.
///
/// Sessions are independent and `Send`: create one per connection or
/// thread ([`Database::session`]) and run them concurrently — they reuse
/// each other's intermediates through the shared pool. Every query runs
/// against an epoch-pinned catalog snapshot (refreshed at query start),
/// so commits from other sessions become visible at the next query, never
/// halfway through one.
///
/// Dropping a session closes it: the per-session credit slices of the
/// remaining sessions rebalance (see
/// [`RecyclerConfig::session_credits`](recycler::RecyclerConfig::session_credits)).
pub struct Session {
    db: Database,
    engine: EngineKind,
}

impl Session {
    pub(crate) fn recycled(db: Database, engine: Engine<Recycler>) -> Session {
        Session {
            db,
            engine: EngineKind::Recycled(Box::new(engine)),
        }
    }

    pub(crate) fn naive(db: Database, engine: Engine<NoHook>) -> Session {
        Session {
            db,
            engine: EngineKind::Naive(engine),
        }
    }

    /// The database this session is attached to.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// This session's id on the shared recycler (0 for naive sessions).
    pub fn id(&self) -> u64 {
        match &self.engine {
            EngineKind::Recycled(e) => e.hook.session_id(),
            EngineKind::Naive(_) => 0,
        }
    }

    /// Execute a prepared template with the given parameters. The
    /// template must come from [`Database::prepare`] (or
    /// [`Database::template`]); running an unoptimised program works but
    /// skips recycling entirely (nothing is marked).
    pub fn query(&mut self, template: &Program, params: &[Value]) -> Result<QueryReply> {
        match &mut self.engine {
            EngineKind::Recycled(e) => {
                let out = e.run(template, params)?;
                let admitted = e.hook.query_log().last().map(|r| r.admitted).unwrap_or(0);
                Ok(QueryReply {
                    exports: out.exports,
                    marked: out.stats.marked as u64,
                    reused: out.stats.reused as u64,
                    subsumed: out.stats.subsumed as u64,
                    admitted,
                    elapsed: out.stats.elapsed,
                })
            }
            EngineKind::Naive(e) => {
                let out = e.run(template, params)?;
                Ok(QueryReply {
                    exports: out.exports,
                    marked: 0,
                    reused: 0,
                    subsumed: 0,
                    admitted: 0,
                    elapsed: out.stats.elapsed,
                })
            }
        }
    }

    /// Execute a prepared template under a soft deadline of `budget`
    /// from now.
    ///
    /// The deadline is enforced at the recycler's **admission and
    /// eviction-wait points**: past it, the query stops admitting
    /// intermediates (and therefore can no longer block behind inline
    /// eviction at the capacity gate) and skips subsumption searches;
    /// exact-match hits still serve. Operator execution itself is not
    /// interrupted mid-instruction — when the clock has run out by the
    /// time the run returns, the reply is discarded and
    /// [`Error::Deadline`] is reported (nothing admitted past the
    /// deadline is left in the pool, so a timed-out query cannot have
    /// polluted the cache with work nobody waited for). A zero `budget`
    /// fails fast without running at all.
    pub fn query_with_deadline(
        &mut self,
        template: &Program,
        params: &[Value],
        budget: Duration,
    ) -> Result<QueryReply> {
        if budget.is_zero() {
            return Err(Error::Deadline);
        }
        let deadline = Instant::now()
            .checked_add(budget)
            .unwrap_or_else(|| Instant::now() + Duration::from_secs(u32::MAX as u64));
        if let EngineKind::Recycled(e) = &mut self.engine {
            e.hook.set_deadline(Some(deadline));
        }
        let reply = self.query(template, params);
        if let EngineKind::Recycled(e) = &mut self.engine {
            e.hook.set_deadline(None);
        }
        if Instant::now() >= deadline {
            return Err(Error::Deadline);
        }
        reply
    }

    /// [`Self::query_with_deadline`] for a template registered under
    /// `name` — the request shape the TCP front-end's wire deadline field
    /// maps onto.
    pub fn query_named_with_deadline(
        &mut self,
        name: &str,
        params: &[Value],
        budget: Duration,
    ) -> Result<QueryReply> {
        let template = self
            .db
            .template(name)
            .ok_or_else(|| Error::UnknownTemplate(name.to_string()))?;
        self.query_with_deadline(&template, params, budget)
    }

    /// Execute a prepared template and return the abstract machine's full
    /// [`rmal::QueryOutput`] — exports plus the per-instruction execution
    /// profile. The experiment harness uses this to attribute time to
    /// individual operators; prefer [`Self::query`] everywhere else.
    pub fn query_output(
        &mut self,
        template: &Program,
        params: &[Value],
    ) -> Result<rmal::QueryOutput> {
        match &mut self.engine {
            EngineKind::Recycled(e) => Ok(e.run(template, params)?),
            EngineKind::Naive(e) => Ok(e.run(template, params)?),
        }
    }

    /// Execute a template registered under `name`
    /// ([`crate::DatabaseBuilder::template`] / [`Database::register`]) —
    /// the request shape the TCP front-end speaks.
    pub fn query_named(&mut self, name: &str, params: &[Value]) -> Result<QueryReply> {
        let template = self
            .db
            .template(name)
            .ok_or_else(|| Error::UnknownTemplate(name.to_string()))?;
        self.query(&template, params)
    }

    /// Commit a typed [`Update`]: stage inserts and deletes, commit
    /// through the shared catalog's single-writer cell, and synchronise
    /// the recycle pool (invalidation or delta propagation per the
    /// configured update mode). Other sessions observe the commit at
    /// their next query.
    ///
    /// Refused with [`Error::Degraded`] while any pool shard sits in
    /// quarantine after a poisoning panic: invalidation / delta
    /// propagation cannot reach into a torn shard, and committing around
    /// it could leave stale intermediates reachable once the shard is
    /// repaired. Queries keep working in the meantime (quarantined shards
    /// degrade to misses); run
    /// [`MaintenanceGuard::repair_quarantined`](recycler::MaintenanceGuard::repair_quarantined)
    /// via [`Database::maintenance`] to restore commit service.
    pub fn commit(&mut self, update: Update) -> Result<CommitReport> {
        let quarantined = self.db.pool().quarantined_shards();
        if !quarantined.is_empty() {
            return Err(Error::Degraded(format!(
                "{} pool shard(s) quarantined; repair via Database::maintenance()",
                quarantined.len()
            )));
        }
        let Update {
            table,
            inserts,
            deletes,
        } = update;
        let report = match &mut self.engine {
            EngineKind::Recycled(e) => e.update(&table, inserts, deletes)?,
            EngineKind::Naive(e) => e.update(&table, inserts, deletes)?,
        };
        Ok(report)
    }

    /// Snapshot of the shared recycler's lifetime statistics (the same
    /// numbers every session sees — the pool is one).
    pub fn stats(&self) -> RecyclerStats {
        self.db.stats()
    }

    /// Per-query records of *this* session, appended at every query end
    /// (empty for naive sessions).
    pub fn query_log(&self) -> &[QueryRecord] {
        match &self.engine {
            EngineKind::Recycled(e) => e.hook.query_log(),
            EngineKind::Naive(_) => &[],
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("id", &self.id()).finish()
    }
}
