//! The facade's unified error type.
//!
//! Callers of [`crate::Session`] used to juggle two error enums —
//! `rbat::BatError` from storage/operators and `rmal::MalError` from the
//! abstract machine — depending on which layer a request bottomed out in.
//! The facade folds both (plus its own request-level failures) into one
//! [`Error`], with `From` impls so the internal layers keep their own
//! types and `?` does the lifting.

use std::fmt;

use rbat::BatError;
use rmal::MalError;

/// Any error a [`crate::Database`] / [`crate::Session`] request can
/// produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Storage / operator error from the BAT engine.
    Bat(BatError),
    /// Program construction, optimisation or interpretation error from
    /// the abstract machine.
    Mal(MalError),
    /// A query referenced a template name the database has not prepared.
    UnknownTemplate(String),
    /// The recycler configuration handed to the builder was rejected at
    /// build time (e.g. inverted water marks, a collector enabled without
    /// any resource limit). The message says which constraint failed.
    Config(String),
    /// The query's deadline expired before a result was produced
    /// ([`crate::Session::query_with_deadline`]). The query may have
    /// partially run; no partial result is returned and nothing past the
    /// deadline was admitted to the recycle pool.
    Deadline,
    /// The request was refused because the service is running degraded —
    /// e.g. a commit while pool shards sit in quarantine after a
    /// poisoning panic (invalidating through torn state could leave
    /// stale intermediates reachable). Queries keep working (quarantined
    /// shards degrade to cache misses); run
    /// [`crate::Database::maintenance`]'s `repair_quarantined` to
    /// restore full service. The message names the degraded component.
    Degraded(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Bat(e) => write!(f, "{e}"),
            Error::Mal(e) => write!(f, "{e}"),
            Error::UnknownTemplate(name) => write!(f, "unknown template: {name}"),
            Error::Config(msg) => write!(f, "invalid recycler configuration: {msg}"),
            Error::Deadline => write!(f, "query deadline exceeded"),
            Error::Degraded(msg) => write!(f, "service degraded: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Bat(e) => Some(e),
            Error::Mal(e) => Some(e),
            Error::UnknownTemplate(_) | Error::Config(_) | Error::Deadline | Error::Degraded(_) => {
                None
            }
        }
    }
}

impl From<BatError> for Error {
    fn from(e: BatError) -> Error {
        Error::Bat(e)
    }
}

impl From<MalError> for Error {
    /// A `MalError` that merely wraps a storage error unwraps to
    /// [`Error::Bat`], so matching on the storage failure works the same
    /// whichever layer surfaced it.
    fn from(e: MalError) -> Error {
        match e {
            MalError::Bat(b) => Error::Bat(b),
            other => Error::Mal(other),
        }
    }
}

/// Result alias for facade requests.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bat_errors_unify_through_both_layers() {
        let direct: Error = BatError::not_found("table", "t").into();
        let via_mal: Error = MalError::Bat(BatError::not_found("table", "t")).into();
        assert_eq!(direct, via_mal, "one error type, whatever the layer");
        assert!(direct.to_string().contains("table not found"));
    }

    #[test]
    fn config_errors_carry_the_violated_constraint() {
        let e = Error::Config("low_water_ratio (0.9) must be < high_water_ratio (0.8)".into());
        assert!(e.to_string().starts_with("invalid recycler configuration:"));
        assert!(e.to_string().contains("low_water_ratio"));
        use std::error::Error as _;
        assert!(e.source().is_none());
    }

    #[test]
    fn robustness_errors_display_their_taxonomy() {
        assert_eq!(Error::Deadline.to_string(), "query deadline exceeded");
        let e = Error::Degraded("2 pool shards quarantined".into());
        assert!(e.to_string().starts_with("service degraded:"));
        assert!(e.to_string().contains("quarantined"));
        use std::error::Error as _;
        assert!(e.source().is_none());
    }

    #[test]
    fn mal_errors_keep_their_detail() {
        let e: Error = MalError::bad_args("select", "expected a BAT").into();
        assert!(matches!(e, Error::Mal(_)));
        assert!(e.to_string().contains("expected a BAT"));
    }
}
