//! End-to-end execution of all 22 TPC-H templates against a generated
//! catalog — the arg-shape/dataflow gate for every query plan.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rmal::Engine;
use tpch::{all_queries, generate, TpchScale};

#[test]
fn every_query_runs_and_is_deterministic() {
    let cat = generate(TpchScale::new(0.002));
    let mut engine = Engine::new(cat);
    let mut rng = SmallRng::seed_from_u64(2024);
    for q in all_queries() {
        let mut t = q.template;
        engine.optimize(&mut t);
        let params = (q.params)(&mut rng);
        let out1 = engine
            .run(&t, &params)
            .unwrap_or_else(|e| panic!("q{} failed: {e}", q.number));
        let out2 = engine.run(&t, &params).unwrap();
        assert_eq!(
            out1.exports, out2.exports,
            "q{} must be deterministic",
            q.number
        );
        assert!(
            !out1.exports.is_empty(),
            "q{} must export results",
            q.number
        );
    }
}

#[test]
fn queries_touch_expected_volume() {
    // sanity: the big scans (Q1, Q6) see a nontrivial share of lineitem
    let cat = generate(TpchScale::new(0.002));
    let nline = cat.table("lineitem").unwrap().nrows() as i64;
    let mut engine = Engine::new(cat);
    let q = tpch::query(1);
    let mut t = q.template;
    engine.optimize(&mut t);
    let mut rng = SmallRng::seed_from_u64(7);
    let p = (q.params)(&mut rng);
    let out = engine.run(&t, &p).unwrap();
    let groups = out.export("groups").and_then(|v| v.as_int()).unwrap();
    assert!(groups >= 3, "Q1 must produce several (flag,status) groups");
    let qty = out.export("sum_qty").and_then(|v| v.as_float()).unwrap();
    assert!(qty > nline as f64, "sum of quantities exceeds row count");
}
