//! Workload builders: per-query micro-batches and the mixed 200-query
//! batch of paper §7.2–§7.3.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rbat::Value;

use crate::queries::{query, TpchQuery};

/// One batch item: which query (index into the batch's template list) with
/// which parameter values.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Index into the accompanying template vector.
    pub query_idx: usize,
    /// TPC-H query number (1..=22), for reporting.
    pub query_no: u8,
    /// Substitution parameters for this instance.
    pub params: Vec<Value>,
}

/// `instances` instances of a single query with freshly drawn parameters —
/// the micro-benchmark shape of paper §7.1 (10 instances per query).
pub fn query_batch(query_no: u8, instances: usize, seed: u64) -> (Vec<TpchQuery>, Vec<BatchItem>) {
    let q = query(query_no);
    let mut rng = SmallRng::seed_from_u64(seed);
    let items = (0..instances)
        .map(|_| BatchItem {
            query_idx: 0,
            query_no,
            params: (q.params)(&mut rng),
        })
        .collect();
    (vec![q], items)
}

/// The paper's mixed workload: `instances_each` instances of every query
/// in `query_nos`, shuffled into one interleaved batch (§7.2 uses 20 × 10
/// queries = 200).
pub fn mixed_batch(
    query_nos: &[u8],
    instances_each: usize,
    seed: u64,
) -> (Vec<TpchQuery>, Vec<BatchItem>) {
    let templates: Vec<TpchQuery> = query_nos.iter().map(|&n| query(n)).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut items = Vec::with_capacity(query_nos.len() * instances_each);
    for (idx, q) in templates.iter().enumerate() {
        for _ in 0..instances_each {
            items.push(BatchItem {
                query_idx: idx,
                query_no: q.number,
                params: (q.params)(&mut rng),
            });
        }
    }
    items.shuffle(&mut rng);
    (templates, items)
}

/// The ten queries of the paper's mixed workload (§7.2): "relatively large
/// overlaps to highlight how well the admission policies recognise
/// instruction categories".
pub const MIXED_QUERIES: [u8; 10] = [4, 7, 8, 11, 12, 16, 18, 19, 21, 22];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_batch_shape() {
        let (templates, items) = query_batch(18, 10, 7);
        assert_eq!(templates.len(), 1);
        assert_eq!(items.len(), 10);
        assert!(items.iter().all(|i| i.query_no == 18 && i.query_idx == 0));
    }

    #[test]
    fn mixed_batch_shape_and_determinism() {
        let (t1, i1) = mixed_batch(&MIXED_QUERIES, 20, 99);
        assert_eq!(t1.len(), 10);
        assert_eq!(i1.len(), 200);
        let (_, i2) = mixed_batch(&MIXED_QUERIES, 20, 99);
        for (a, b) in i1.iter().zip(&i2) {
            assert_eq!(a.query_no, b.query_no);
            assert_eq!(a.params, b.params);
        }
    }

    #[test]
    fn mixed_batch_interleaves() {
        let (_, items) = mixed_batch(&[4, 18], 10, 1);
        // shuffled: the first ten items are not all query 4
        let first: Vec<u8> = items.iter().take(10).map(|i| i.query_no).collect();
        assert!(first.contains(&18) || first.contains(&4));
        assert_eq!(items.len(), 20);
    }
}
