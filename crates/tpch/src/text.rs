//! Word lists and random-text helpers for the data generator.

use rand::rngs::SmallRng;
use rand::Rng;

/// TPC-H region names.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// TPC-H nation names with their region index.
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// Market segments (customer.c_mktsegment).
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Order priorities (orders.o_orderpriority).
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship modes (lineitem.l_shipmode).
pub const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Ship instructions (lineitem.l_shipinstruct).
pub const SHIPINSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Part type syllables (p_type = one of each).
pub const TYPE_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Part type middle syllable.
pub const TYPE_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Part type final syllable.
pub const TYPE_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Part container syllables.
pub const CONTAINER_S1: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
/// Container kind syllable.
pub const CONTAINER_S2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Colour words used in p_name (the Q9 `like '%green%'` target class).
pub const COLORS: [&str; 16] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "chartreuse",
    "coral",
    "cream",
    "forest",
    "green",
];

/// Filler nouns for comments.
pub const NOUNS: [&str; 12] = [
    "packages",
    "requests",
    "accounts",
    "deposits",
    "foxes",
    "ideas",
    "theodolites",
    "pinto",
    "instructions",
    "dependencies",
    "excuses",
    "platelets",
];

/// Filler verbs for comments.
pub const VERBS: [&str; 10] = [
    "sleep",
    "wake",
    "nag",
    "haggle",
    "dazzle",
    "detect",
    "integrate",
    "snooze",
    "doze",
    "cajole",
];

/// Pick a random element of a slice (by copy — the tables here hold
/// `&'static str`s).
pub fn pick<T: Copy>(rng: &mut SmallRng, items: &[T]) -> T {
    items[rng.gen_range(0..items.len())]
}

/// A short random comment of `words` words; roughly 1 in `special_one_in`
/// comments embeds the Q13 marker phrase "special requests".
pub fn comment(rng: &mut SmallRng, words: usize, special_one_in: u32) -> String {
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        if i % 2 == 0 {
            out.push_str(pick(rng, &NOUNS));
        } else {
            out.push_str(pick(rng, &VERBS));
        }
    }
    if special_one_in > 0 && rng.gen_range(0..special_one_in) == 0 {
        out.push_str(" special requests");
    }
    out
}

/// A part name: three colour words.
pub fn part_name(rng: &mut SmallRng) -> String {
    format!(
        "{} {} {}",
        pick(rng, &COLORS),
        pick(rng, &COLORS),
        pick(rng, &COLORS)
    )
}

/// A part type: three syllables.
pub fn part_type(rng: &mut SmallRng) -> String {
    format!(
        "{} {} {}",
        pick(rng, &TYPE_S1),
        pick(rng, &TYPE_S2),
        pick(rng, &TYPE_S3)
    )
}

/// A container: two syllables.
pub fn container(rng: &mut SmallRng) -> String {
    format!("{} {}", pick(rng, &CONTAINER_S1), pick(rng, &CONTAINER_S2))
}

/// A brand: `Brand#MN` with M,N in 1..=5.
pub fn brand(rng: &mut SmallRng) -> String {
    format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5))
}

/// A phone number with the nation-determined country code.
pub fn phone(rng: &mut SmallRng, nation: usize) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nation,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_with_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(part_type(&mut a), part_type(&mut b));
        assert_eq!(comment(&mut a, 5, 10), comment(&mut b, 5, 10));
    }

    #[test]
    fn brand_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let b = brand(&mut rng);
        assert!(b.starts_with("Brand#"));
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn nations_cover_regions() {
        for (_, r) in NATIONS {
            assert!(r < REGIONS.len());
        }
    }
}
