//! TPC-H queries 7–11.

use rand::rngs::SmallRng;
use rand::Rng;
use rbat::Value;
use rmal::{Program, ProgramBuilder, P};

use super::{fetch, fk_filter, month_start, revenue};

/// Q7 — volume shipping between two nations: lineitems shipped in
/// 1995–1996 where supplier and customer sit in the two given nations.
pub fn q7() -> Program {
    let mut b = ProgramBuilder::new("tpch_q7", 2);
    let nn = b.bind("nation", "n_name");
    let n1 = b.uselect(nn, P(0));
    let nn2 = b.bind("nation", "n_name");
    let n2 = b.uselect(nn2, P(1));
    let supps = fk_filter(&mut b, crate::schema::IDX_SUPP_NATION, n1);
    let custs = fk_filter(&mut b, crate::schema::IDX_CUST_NATION, n2);
    // parameter-independent two-year shipping window
    let ls = b.bind("lineitem", "l_shipdate");
    let window = b.select(
        ls,
        Value::date("1995-01-01"),
        Value::date("1996-12-31"),
        true,
        true,
    );
    let li_of_supps = fk_filter(&mut b, crate::schema::IDX_LI_SUPP, supps);
    let li = b.semijoin(window, li_of_supps);
    let orders_of_custs = fk_filter(&mut b, crate::schema::IDX_ORD_CUST, custs);
    let li_of_orders = fk_filter(&mut b, crate::schema::IDX_LI_ORDERS, orders_of_custs);
    let li2 = b.semijoin(li, li_of_orders);
    let map = b.row_map(li2);
    let rev = revenue(&mut b, map);
    let total = b.sum(rev);
    let n = b.count(li2);
    b.export("revenue", total);
    b.export("lineitems", n);
    b.finish()
}

/// Q7 parameters: an ordered pair of distinct nations.
pub fn q7_params(rng: &mut SmallRng) -> Vec<Value> {
    let a = rng.gen_range(0..25usize);
    let mut c = rng.gen_range(0..25usize);
    if c == a {
        c = (c + 1) % 25;
    }
    vec![
        Value::str(crate::text::NATIONS[a].0),
        Value::str(crate::text::NATIONS[c].0),
    ]
}

/// Q8 — national market share: revenue fraction of one nation's suppliers
/// within a region's part-type market, 1995–1996.
pub fn q8() -> Program {
    let mut b = ProgramBuilder::new("tpch_q8", 3);
    let ptype = b.bind("part", "p_type");
    let parts = b.uselect(ptype, P(0));
    let rname = b.bind("region", "r_name");
    let reg = b.uselect(rname, P(1));
    let nations = fk_filter(&mut b, crate::schema::IDX_NATION_REGION, reg);
    let custs = fk_filter(&mut b, crate::schema::IDX_CUST_NATION, nations);
    let od = b.bind("orders", "o_orderdate");
    let window = b.select(
        od,
        Value::date("1995-01-01"),
        Value::date("1996-12-31"),
        true,
        true,
    );
    let orders_of_custs = fk_filter(&mut b, crate::schema::IDX_ORD_CUST, custs);
    let orders = b.semijoin(window, orders_of_custs);
    let li_of_orders = fk_filter(&mut b, crate::schema::IDX_LI_ORDERS, orders);
    let li_of_parts = fk_filter(&mut b, crate::schema::IDX_LI_PART, parts);
    let li = b.semijoin(li_of_orders, li_of_parts);
    let map = b.row_map(li);
    let rev = revenue(&mut b, map);
    let total = b.sum(rev);
    // numerator: restrict to suppliers of the chosen nation
    let nn = b.bind("nation", "n_name");
    let nat = b.uselect(nn, P(2));
    let supps = fk_filter(&mut b, crate::schema::IDX_SUPP_NATION, nat);
    let li_nat = {
        let li_of_supps = fk_filter(&mut b, crate::schema::IDX_LI_SUPP, supps);
        b.semijoin(li, li_of_supps)
    };
    let nmap = b.row_map(li_nat);
    let nrev = revenue(&mut b, nmap);
    let num = b.sum(nrev);
    b.export("market_revenue", total);
    b.export("nation_revenue", num);
    b.finish()
}

/// Q8 parameters: part type, region, nation within the region.
pub fn q8_params(rng: &mut SmallRng) -> Vec<Value> {
    let t = crate::text::part_type(rng);
    let region_idx = rng.gen_range(0..5usize);
    let nations: Vec<&str> = crate::text::NATIONS
        .iter()
        .filter(|(_, r)| *r == region_idx)
        .map(|(n, _)| *n)
        .collect();
    let nation = nations[rng.gen_range(0..nations.len())];
    vec![
        Value::str(&t),
        Value::str(crate::text::REGIONS[region_idx]),
        Value::str(nation),
    ]
}

/// Q9 — product type profit: lineitems of parts whose name contains a
/// colour, profit grouped by supplier nation.
pub fn q9() -> Program {
    let mut b = ProgramBuilder::new("tpch_q9", 1);
    let pname = b.bind("part", "p_name");
    let parts = b.like(pname, P(0));
    let li_of_parts = fk_filter(&mut b, crate::schema::IDX_LI_PART, parts);
    let map = b.row_map(li_of_parts);
    let rev = revenue(&mut b, map);
    let sk = fetch(&mut b, map, "lineitem", "l_suppkey");
    let g = b.group(sk);
    let sums = b.grp_sum(rev, g);
    let total = b.sum(rev);
    let suppliers = b.count(sums);
    b.export("profit", total);
    b.export("suppliers", suppliers);
    b.finish()
}

/// Q9 parameters: a colour word pattern.
pub fn q9_params(rng: &mut SmallRng) -> Vec<Value> {
    let c = crate::text::pick(rng, &crate::text::COLORS);
    vec![Value::str(&format!("%{c}%"))]
}

/// Q10 — returned item reporting: customers with returned lineitems from
/// orders of one quarter.
pub fn q10() -> Program {
    let mut b = ProgramBuilder::new("tpch_q10", 1);
    let od = b.bind("orders", "o_orderdate");
    let hi = b.add_months(P(0), 3);
    let window = b.select(od, P(0), hi, true, false);
    // parameter-independent: returned lineitems
    let rf = b.bind("lineitem", "l_returnflag");
    let returned = b.uselect(rf, Value::str("R"));
    let li_of_orders = fk_filter(&mut b, crate::schema::IDX_LI_ORDERS, window);
    let li = b.semijoin(returned, li_of_orders);
    let map = b.row_map(li);
    let rev = revenue(&mut b, map);
    // group revenue by ordering customer: lineitem → order → customer
    let lord = {
        let idx = b.bind_idx(crate::schema::IDX_LI_ORDERS);
        let m = b.mark_t(li, 0);
        let rm = b.reverse(m);
        b.join(rm, idx)
    };
    let ocust = b.bind("orders", "o_custkey");
    let cust = b.join(lord, ocust);
    let g = b.group(cust);
    let sums = b.grp_sum(rev, g);
    let top = b.topn(sums, 20, false);
    let best = b.max(top);
    let n = b.count(li);
    b.export("returned_lineitems", n);
    b.export("top_customer_revenue", best);
    b.finish()
}

/// Q10 parameters: first of month in 1993-02 .. 1995-01 (24 values).
pub fn q10_params(rng: &mut SmallRng) -> Vec<Value> {
    let n = rng.gen_range(0..24);
    let y = 1993 + (n + 1) / 12;
    let m = 1 + (n + 1) % 12;
    vec![Value::Date(rbat::Date::from_ymd(y, m, 1))]
}

/// Q11 — important stock identification. The partsupp value thread appears
/// twice — once for the grouped sums, once for the total of the
/// sub-query — exactly as SQL compilation leaves it; the second occurrence
/// is pure *intra-query* commonality (33.3 % in paper Table II).
pub fn q11() -> Program {
    let mut b = ProgramBuilder::new("tpch_q11", 2);
    // --- sub-query thread: total value of the nation's stock
    let nn = b.bind("nation", "n_name");
    let nat = b.uselect(nn, P(0));
    let supps = fk_filter(&mut b, crate::schema::IDX_SUPP_NATION, nat);
    let ps = fk_filter(&mut b, crate::schema::IDX_PS_SUPP, supps);
    let map = b.row_map(ps);
    let cost = fetch(&mut b, map, "partsupp", "ps_supplycost");
    let qty = fetch(&mut b, map, "partsupp", "ps_availqty");
    let val = b.mul(cost, qty);
    let total = b.sum(val);
    // --- outer query thread: the same computation, grouped by part
    let nn2 = b.bind("nation", "n_name");
    let nat2 = b.uselect(nn2, P(0));
    let supps2 = fk_filter(&mut b, crate::schema::IDX_SUPP_NATION, nat2);
    let ps2 = fk_filter(&mut b, crate::schema::IDX_PS_SUPP, supps2);
    let map2 = b.row_map(ps2);
    let cost2 = fetch(&mut b, map2, "partsupp", "ps_supplycost");
    let qty2 = fetch(&mut b, map2, "partsupp", "ps_availqty");
    let val2 = b.mul(cost2, qty2);
    let pk = fetch(&mut b, map2, "partsupp", "ps_partkey");
    let g = b.group(pk);
    let sums = b.grp_sum(val2, g);
    // parts whose stock fraction exceeds the threshold
    let frac = b.div(sums, total);
    let over = b.select(frac, P(1), Value::Nil, false, true);
    let n = b.count(over);
    b.export("parts_over_threshold", n);
    b.export("total_value", total);
    b.finish()
}

/// Q11 parameters: nation, threshold fraction (spec: 0.0001/SF — scaled up
/// for the small default SF so the result set stays selective).
pub fn q11_params(rng: &mut SmallRng) -> Vec<Value> {
    let n = rng.gen_range(0..25usize);
    vec![Value::str(crate::text::NATIONS[n].0), Value::Float(0.01)]
}

#[allow(dead_code)]
fn _unused(rng: &mut SmallRng) -> Value {
    month_start(rng, 1993, 1997)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q11_duplicates_value_thread() {
        let p = q11();
        let binds = p
            .listing()
            .matches("sql.bind(\"partsupp\", \"ps_supplycost\")")
            .count();
        assert_eq!(binds, 2, "sub-query and outer query each bind the column");
    }

    #[test]
    fn q7_window_is_constant() {
        let l = q7().listing();
        assert!(l.contains("1995-01-01"));
    }
}
