//! TPC-H queries 17–22.

use rand::rngs::SmallRng;
use rand::Rng;
use rbat::Value;
use rmal::{Program, ProgramBuilder, P};

use super::{fetch, fk_filter};

/// Q17 — small-quantity-order revenue: lineitems of one brand/container
/// part class; revenue of the low-quantity tail.
pub fn q17() -> Program {
    let mut b = ProgramBuilder::new("tpch_q17", 3);
    let pb = b.bind("part", "p_brand");
    let branded = b.uselect(pb, P(0));
    let pc = b.bind("part", "p_container");
    let contained = b.uselect(pc, P(1));
    let parts = b.semijoin(branded, contained);
    let li = fk_filter(&mut b, crate::schema::IDX_LI_PART, parts);
    let map = b.row_map(li);
    let qty = fetch(&mut b, map, "lineitem", "l_quantity");
    let small = b.select(qty, Value::Nil, P(2), true, false);
    let smap = b.row_map(small);
    let price_all = fetch(&mut b, map, "lineitem", "l_extendedprice");
    let price = b.join(smap, price_all);
    let total = b.sum(price);
    let n = b.count(small);
    b.export("revenue", total);
    b.export("lineitems", n);
    b.finish()
}

/// Q17 parameters: brand, container, quantity cap.
pub fn q17_params(rng: &mut SmallRng) -> Vec<Value> {
    let brand = crate::text::brand(rng);
    let container = crate::text::container(rng);
    vec![
        Value::str(&brand),
        Value::str(&container),
        Value::Float(rng.gen_range(5..=15) as f64),
    ]
}

/// Q18 — large volume customers: orders whose lineitems sum to more than a
/// quantity level. Grouping lineitem by order and summing quantities is
/// parameter-independent and expensive — the paper's flagship inter-query
/// reuse case (75 % of instructions, 1.8 s → milliseconds, Fig. 4b).
pub fn q18() -> Program {
    let mut b = ProgramBuilder::new("tpch_q18", 1);
    let lq = b.bind("lineitem", "l_quantity");
    let lo = b.bind("lineitem", "l_orderkey");
    let g = b.group(lo);
    let sums = b.grp_sum(lq, g);
    let keys = b.grp_first(lo, g);
    // parameter-dependent tail: groups above the quantity level
    let big = b.select(sums, P(0), Value::Nil, false, true);
    let bmap = b.row_map(big);
    let okeys = b.join(bmap, keys);
    // join back to orders by key value
    let ok = b.bind("orders", "o_orderkey");
    let okr = b.reverse(ok);
    let oj = b.join(okeys, okr);
    let tp = {
        let t = b.bind("orders", "o_totalprice");
        b.join(oj, t)
    };
    let top = b.topn(tp, 100, false);
    let price_sum = b.sum(top);
    let n = b.count(big);
    b.export("qualifying_orders", n);
    b.export("top_totalprice_sum", price_sum);
    b.finish()
}

/// Q18 parameters: quantity level ∈ {150, 155, 160, 165} — a four-value
/// domain, scaled to this generator's 1–7 lineitems per order (the spec's
/// 312..315 presumes ~4x more lineitems per order).
pub fn q18_params(rng: &mut SmallRng) -> Vec<Value> {
    let level = 150 + 5 * rng.gen_range(0..4i64);
    vec![Value::Float(level as f64)]
}

/// Q19 — discounted revenue: three disjunctive branches of
/// (brand, container class, quantity band) predicates, as three separate
/// operator threads over the shared part/lineitem columns.
pub fn q19() -> Program {
    let mut b = ProgramBuilder::new("tpch_q19", 12);
    let mut branch_sums = Vec::new();
    for i in 0..3u16 {
        let p = |k: u16| P(i * 4 + k);
        let pb = b.bind("part", "p_brand");
        let branded = b.uselect(pb, p(0));
        let pc = b.bind("part", "p_container");
        let contained = b.like(pc, p(1));
        let parts = b.semijoin(branded, contained);
        let lq = b.bind("lineitem", "l_quantity");
        let qsel = b.select_closed(lq, p(2), p(3));
        let li_of_parts = fk_filter(&mut b, crate::schema::IDX_LI_PART, parts);
        let li = b.semijoin(qsel, li_of_parts);
        let map = b.row_map(li);
        let rev = super::revenue(&mut b, map);
        let s = b.sum(rev);
        branch_sums.push((li, s));
    }
    let (li0, s0) = branch_sums[0];
    let (li1, s1) = branch_sums[1];
    let (li2, s2) = branch_sums[2];
    let n0 = b.count(li0);
    let n1 = b.count(li1);
    let n2 = b.count(li2);
    b.export("rev1", s0);
    b.export("rev2", s1);
    b.export("rev3", s2);
    b.export("n1", n0);
    b.export("n2", n1);
    b.export("n3", n2);
    b.finish()
}

/// Q19 parameters: three (brand, container-class, quantity band) triples
/// with the spec's overlapping small domains.
pub fn q19_params(rng: &mut SmallRng) -> Vec<Value> {
    let mut out = Vec::with_capacity(12);
    for (class, qlo) in [("SM%", 1i64), ("MED%", 10), ("LG%", 20)] {
        let brand = crate::text::brand(rng);
        let q = qlo + rng.gen_range(0i64..=10);
        out.push(Value::str(&brand));
        out.push(Value::str(class));
        out.push(Value::Float(q as f64));
        out.push(Value::Float((q + 10) as f64));
    }
    out
}

/// Q20 — potential part promotion: suppliers of one nation stocking parts
/// whose name starts with a colour, with ample availability.
pub fn q20() -> Program {
    let mut b = ProgramBuilder::new("tpch_q20", 2);
    let pn = b.bind("part", "p_name");
    let parts = b.like(pn, P(0));
    let ps_of_parts = fk_filter(&mut b, crate::schema::IDX_PS_PART, parts);
    let map = b.row_map(ps_of_parts);
    let avail = fetch(&mut b, map, "partsupp", "ps_availqty");
    let ample = b.select(avail, Value::Float(100.0), Value::Nil, false, true);
    let amap = b.row_map(ample);
    let ps_row = b.join(amap, map);
    let psr = b.reverse(ps_row);
    let ps_ok = b.kunique(psr);
    // suppliers of those partsupp rows, restricted to the nation
    let sidx = b.bind_idx(crate::schema::IDX_PS_SUPP);
    let sof = b.semijoin(sidx, ps_ok);
    let srev = b.reverse(sof);
    let cand_supp = b.kunique(srev);
    let nn = b.bind("nation", "n_name");
    let nat = b.uselect(nn, P(1));
    let supp_of_nat = fk_filter(&mut b, crate::schema::IDX_SUPP_NATION, nat);
    let result = b.semijoin(supp_of_nat, cand_supp);
    let n = b.count(result);
    b.export("suppliers", n);
    b.finish()
}

/// Q20 parameters: colour prefix, nation.
pub fn q20_params(rng: &mut SmallRng) -> Vec<Value> {
    let c = crate::text::pick(rng, &crate::text::COLORS);
    let n = rng.gen_range(0..25usize);
    vec![
        Value::str(&format!("{c}%")),
        Value::str(crate::text::NATIONS[n].0),
    ]
}

/// Q21 — suppliers who kept orders waiting: late lineitems
/// (`l_receiptdate > l_commitdate`) of multi-supplier orders, attributed
/// to suppliers of one nation. The late-lineitem and multi-supplier
/// threads are parameter-independent; the plan deliberately repeats the
/// late-lineitem scan for the exists/not-exists legs, as SQL compilation
/// does (intra-query reuse, 9.1 % in Table II).
pub fn q21() -> Program {
    let mut b = ProgramBuilder::new("tpch_q21", 1);
    // late lineitems (exists leg)
    let lr = b.bind("lineitem", "l_receiptdate");
    let lc = b.bind("lineitem", "l_commitdate");
    let cmp = b.calc_cmp(lr, lc, rbat::ops::CmpOp::Gt);
    let late = b.uselect(cmp, Value::Bool(true));
    // multi-supplier orders: orders with lineitems from >1 supplier
    let lo = b.bind("lineitem", "l_orderkey");
    let g = b.group(lo);
    let ls = b.bind("lineitem", "l_suppkey");
    let keys = b.grp_first(lo, g);
    let cnt = b.grp_count(ls, g);
    let multi = b.select(cnt, Value::Int(1), Value::Nil, false, true);
    let mmap = b.row_map(multi);
    let mkeys = b.join(mmap, keys);
    // late lineitems again (not-exists leg of the SQL, pre-CSE)
    let lr2 = b.bind("lineitem", "l_receiptdate");
    let lc2 = b.bind("lineitem", "l_commitdate");
    let cmp2 = b.calc_cmp(lr2, lc2, rbat::ops::CmpOp::Gt);
    let late2 = b.uselect(cmp2, Value::Bool(true));
    let _ = late2;
    // suppliers of the nation
    let nn = b.bind("nation", "n_name");
    let nat = b.uselect(nn, P(0));
    let supps = fk_filter(&mut b, crate::schema::IDX_SUPP_NATION, nat);
    let li_of_supps = fk_filter(&mut b, crate::schema::IDX_LI_SUPP, supps);
    let li = b.semijoin(late, li_of_supps);
    // ... that belong to multi-supplier orders (by order key value)
    let map = b.row_map(li);
    let lkeys = fetch(&mut b, map, "lineitem", "l_orderkey");
    let mkr = b.reverse(mkeys);
    let joined = b.join(lkeys, mkr);
    let n = b.count(joined);
    // waiting count per supplier
    let sk = fetch(&mut b, map, "lineitem", "l_suppkey");
    let sg = b.group(sk);
    let scnt = b.grp_count(sk, sg);
    let top = b.topn(scnt, 100, false);
    let best = b.max(top);
    b.export("waiting_lineitems", n);
    b.export("max_per_supplier", best);
    b.finish()
}

/// Q21 parameters: nation.
pub fn q21_params(rng: &mut SmallRng) -> Vec<Value> {
    let n = rng.gen_range(0..25usize);
    vec![Value::str(crate::text::NATIONS[n].0)]
}

/// Q22 — global sales opportunity: customers of a band of nations with
/// above-average account balance and no orders. The average-balance
/// sub-query is parameter-independent (the 75 % inter reuse of Table II).
pub fn q22() -> Program {
    let mut b = ProgramBuilder::new("tpch_q22", 2);
    // parameter-independent: average positive account balance
    let ab = b.bind("customer", "c_acctbal");
    let pos = b.select(ab, Value::Float(0.0), Value::Nil, false, true);
    let avg = b.avg(pos);
    // parametric: customers of the nation band
    let cn = b.bind("customer", "c_nationkey");
    let band = b.select_closed(cn, P(0), P(1));
    let ab2 = b.bind("customer", "c_acctbal");
    let rich_all = b.select(ab2, Value::Float(0.0), Value::Nil, false, true);
    let band_rich = b.semijoin(band, rich_all);
    let bmap = b.row_map(band_rich);
    let bal = b.join(bmap, ab2);
    let over = b.select(bal, avg, Value::Nil, false, true);
    // ... without orders
    let oc = b.bind("orders", "o_custkey");
    let omap = b.row_map(oc);
    let ckeys = b.join(omap, oc);
    let ckr = b.reverse(ckeys);
    let with_orders = b.kunique(ckr);
    // map candidate rows back to customer keys
    let omap2 = b.row_map(over);
    let cmkeys = {
        let orig = b.join(omap2, bmap);
        let ck = b.bind("customer", "c_custkey");
        b.join(orig, ck)
    };
    let cmr = b.reverse(cmkeys);
    let without = b.diff(cmr, with_orders);
    let n = b.count(without);
    b.export("customers", n);
    b.finish()
}

/// Q22 parameters: a band of seven nation keys.
pub fn q22_params(rng: &mut SmallRng) -> Vec<Value> {
    let lo = rng.gen_range(0..19i64);
    vec![Value::Int(lo), Value::Int(lo + 6)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q18_grouping_is_param_independent() {
        let p = q18();
        // the group instruction takes only bound columns — no A0 upstream
        let l = p.listing();
        let group_line = l.lines().find(|ln| ln.contains("group.new")).unwrap();
        assert!(!group_line.contains("A0"));
    }

    #[test]
    fn q19_has_three_branches() {
        let l = q19().listing();
        assert_eq!(l.matches("sql.bind(\"part\", \"p_brand\")").count(), 3);
    }

    #[test]
    fn q21_repeats_late_thread() {
        let l = q21().listing();
        assert_eq!(l.matches("batcalc.gt").count(), 2);
    }
}
