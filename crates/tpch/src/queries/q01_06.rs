//! TPC-H queries 1–6.

use rand::rngs::SmallRng;
use rand::Rng;
use rbat::Value;
use rmal::{Program, ProgramBuilder, P};

use super::{fetch, fk_filter, revenue};

/// Q1 — pricing summary report: scan lineitem up to a shipdate cutoff,
/// group by (returnflag, linestatus), aggregate quantities and revenues.
pub fn q1() -> Program {
    let mut b = ProgramBuilder::new("tpch_q1", 1);
    let ship = b.bind("lineitem", "l_shipdate");
    let sel = b.select(ship, Value::Nil, P(0), true, true);
    let map = b.row_map(sel);
    let rf = fetch(&mut b, map, "lineitem", "l_returnflag");
    let ls = fetch(&mut b, map, "lineitem", "l_linestatus");
    let qty = fetch(&mut b, map, "lineitem", "l_quantity");
    let price = fetch(&mut b, map, "lineitem", "l_extendedprice");
    let disc = fetch(&mut b, map, "lineitem", "l_discount");
    let g0 = b.group(rf);
    let g = b.group_refine(g0, ls);
    let sum_qty = b.grp_sum(qty, g);
    let _sum_price = b.grp_sum(price, g);
    let pd = b.mul(price, disc);
    let disc_price = b.sub(price, pd);
    let sum_disc = b.grp_sum(disc_price, g);
    let _avg_qty = b.grp_avg(qty, g);
    let cnt = b.grp_count(qty, g);
    let groups = b.count(cnt);
    let total_qty = b.sum(sum_qty);
    let total_rev = b.sum(sum_disc);
    b.export("groups", groups);
    b.export("sum_qty", total_qty);
    b.export("revenue", total_rev);
    b.finish()
}

/// Q1 parameters: shipdate cutoff `1998-12-01 − delta days`, delta ∈ [60, 120].
pub fn q1_params(rng: &mut SmallRng) -> Vec<Value> {
    let delta = rng.gen_range(60i32..=120);
    vec![Value::Date(
        rbat::Date::from_ymd(1998, 12, 1).add_days(-delta),
    )]
}

/// Q2 — minimum-cost supplier: parts of a given size and type class joined
/// with partsupp, restricted to suppliers of one region.
pub fn q2() -> Program {
    let mut b = ProgramBuilder::new("tpch_q2", 3);
    // parts of requested size and type suffix
    let psize = b.bind("part", "p_size");
    let sized = b.uselect(psize, P(0));
    let ptype = b.bind("part", "p_type");
    let typed = b.like(ptype, P(1));
    let parts = b.semijoin(sized, typed);
    // region → nations → suppliers
    let rname = b.bind("region", "r_name");
    let reg = b.uselect(rname, P(2));
    let nations = fk_filter(&mut b, crate::schema::IDX_NATION_REGION, reg);
    let nat_rev = b.reverse(nations); // not needed dense; nations=(n-oid, r-oid)
    let _ = nat_rev;
    let supps = fk_filter(&mut b, crate::schema::IDX_SUPP_NATION, nations);
    // partsupp rows of qualifying parts and suppliers
    let ps_of_parts = fk_filter(&mut b, crate::schema::IDX_PS_PART, parts);
    let ps_of_supps = fk_filter(&mut b, crate::schema::IDX_PS_SUPP, supps);
    let ps = b.semijoin(ps_of_parts, ps_of_supps);
    let map = b.row_map(ps);
    let cost = fetch(&mut b, map, "partsupp", "ps_supplycost");
    let min_cost = b.min(cost);
    let n = b.count(ps);
    b.export("candidates", n);
    b.export("min_cost", min_cost);
    b.finish()
}

/// Q2 parameters: size ∈ [1,50], type suffix, region name.
pub fn q2_params(rng: &mut SmallRng) -> Vec<Value> {
    let size = rng.gen_range(1..=50i64);
    let suffix = crate::text::pick(rng, &crate::text::TYPE_S3);
    let region = crate::text::pick(rng, &crate::text::REGIONS);
    vec![
        Value::Int(size),
        Value::str(&format!("%{suffix}")),
        Value::str(region),
    ]
}

/// Q3 — shipping priority: customers of one segment, orders before a date,
/// lineitems shipped after it; top revenue orders.
pub fn q3() -> Program {
    let mut b = ProgramBuilder::new("tpch_q3", 2);
    let seg = b.bind("customer", "c_mktsegment");
    let custs = b.uselect(seg, P(0));
    let od = b.bind("orders", "o_orderdate");
    let orders_window = b.select(od, Value::Nil, P(1), true, false);
    let orders_of_cust = fk_filter(&mut b, crate::schema::IDX_ORD_CUST, custs);
    let orders = b.semijoin(orders_window, orders_of_cust);
    let ls = b.bind("lineitem", "l_shipdate");
    let lineitems = b.select(ls, P(1), Value::Nil, false, true);
    let li_of_orders = fk_filter(&mut b, crate::schema::IDX_LI_ORDERS, orders);
    let li = b.semijoin(lineitems, li_of_orders);
    let map = b.row_map(li);
    let rev = revenue(&mut b, map);
    let okeys = fetch(&mut b, map, "lineitem", "l_orderkey");
    let g = b.group(okeys);
    let sums = b.grp_sum(rev, g);
    let top = b.topn(sums, 10, false);
    let n = b.count(li);
    let best = b.max(top);
    b.export("lineitems", n);
    b.export("top_revenue", best);
    b.finish()
}

/// Q3 parameters: segment, date around 1995-03.
pub fn q3_params(rng: &mut SmallRng) -> Vec<Value> {
    let seg = crate::text::pick(rng, &crate::text::SEGMENTS);
    let day = rng.gen_range(1..=28);
    vec![
        Value::str(seg),
        Value::Date(rbat::Date::from_ymd(1995, 3, day)),
    ]
}

/// Q4 — order priority checking: orders in a 3-month window having at
/// least one lineitem with `l_commitdate < l_receiptdate`, counted per
/// priority. The late-lineitem thread is parameter-independent — the
/// paper's prime example of inter-query reuse (41.7 % in Table II).
pub fn q4() -> Program {
    let mut b = ProgramBuilder::new("tpch_q4", 1);
    let od = b.bind("orders", "o_orderdate");
    let hi = b.add_months(P(0), 3);
    let window = b.select(od, P(0), hi, true, false);
    // parameter-independent: lineitems received later than committed
    let lc = b.bind("lineitem", "l_commitdate");
    let lr = b.bind("lineitem", "l_receiptdate");
    let cmp = b.calc_cmp(lc, lr, rbat::ops::CmpOp::Lt);
    let late = b.uselect(cmp, Value::Bool(true));
    let lmap = b.row_map(late);
    let idx = b.bind_idx(crate::schema::IDX_LI_ORDERS);
    let lord = b.join(lmap, idx);
    let lord_r = b.reverse(lord);
    let have_late = b.kunique(lord_r);
    // orders in window ∩ orders with a late lineitem
    let qual = b.semijoin(window, have_late);
    let qmap = b.row_map(qual);
    let prio = fetch(&mut b, qmap, "orders", "o_orderpriority");
    let g = b.group(prio);
    let cnt = b.grp_count(prio, g);
    let orders = b.count(qual);
    let groups = b.count(cnt);
    b.export("orders", orders);
    b.export("priorities", groups);
    b.finish()
}

/// Q4 parameters: first of a month between 1993-01 and 1997-10 (58 values).
pub fn q4_params(rng: &mut SmallRng) -> Vec<Value> {
    let n = rng.gen_range(0..58);
    let y = 1993 + n / 12;
    let m = 1 + n % 12;
    vec![Value::Date(rbat::Date::from_ymd(y, m, 1))]
}

/// Q5 — local supplier volume: revenue of lineitems sold by suppliers of
/// one region to customers of the same region, orders within one year.
pub fn q5() -> Program {
    let mut b = ProgramBuilder::new("tpch_q5", 2);
    let rname = b.bind("region", "r_name");
    let reg = b.uselect(rname, P(0));
    let nations = fk_filter(&mut b, crate::schema::IDX_NATION_REGION, reg);
    let custs = fk_filter(&mut b, crate::schema::IDX_CUST_NATION, nations);
    let supps = fk_filter(&mut b, crate::schema::IDX_SUPP_NATION, nations);
    let od = b.bind("orders", "o_orderdate");
    let hi = b.add_months(P(1), 12);
    let window = b.select(od, P(1), hi, true, false);
    let orders_of_cust = fk_filter(&mut b, crate::schema::IDX_ORD_CUST, custs);
    let orders = b.semijoin(window, orders_of_cust);
    let li_of_orders = fk_filter(&mut b, crate::schema::IDX_LI_ORDERS, orders);
    let li_of_supps = fk_filter(&mut b, crate::schema::IDX_LI_SUPP, supps);
    let li = b.semijoin(li_of_orders, li_of_supps);
    let map = b.row_map(li);
    let rev = revenue(&mut b, map);
    // group by supplier nation
    let sj = fetch(&mut b, map, "lineitem", "l_suppkey");
    let g = b.group(sj);
    let sums = b.grp_sum(rev, g);
    let total = b.sum(rev);
    let groups = b.count(sums);
    b.export("revenue", total);
    b.export("suppliers", groups);
    b.finish()
}

/// Q5 parameters: region, year start 1993..1997.
pub fn q5_params(rng: &mut SmallRng) -> Vec<Value> {
    let region = crate::text::pick(rng, &crate::text::REGIONS);
    let y = rng.gen_range(1993..=1997);
    vec![
        Value::str(region),
        Value::Date(rbat::Date::from_ymd(y, 1, 1)),
    ]
}

/// Q6 — forecasting revenue change: one-year shipdate window, a discount
/// band and a quantity cap over lineitem only.
pub fn q6() -> Program {
    let mut b = ProgramBuilder::new("tpch_q6", 4);
    let ship = b.bind("lineitem", "l_shipdate");
    let hi = b.add_months(P(0), 12);
    let sel = b.select(ship, P(0), hi, true, false);
    let map = b.row_map(sel);
    let disc = fetch(&mut b, map, "lineitem", "l_discount");
    let dsel = b.select_closed(disc, P(1), P(2));
    let dmap = b.row_map(dsel);
    let qty = fetch(&mut b, map, "lineitem", "l_quantity");
    let qsel = b.select(qty, Value::Nil, P(3), true, false);
    // lineitems passing both residual predicates (head sets intersect)
    let both = b.semijoin(dsel, qsel);
    let bmap = b.row_map(both);
    let _ = dmap;
    let price_all = fetch(&mut b, map, "lineitem", "l_extendedprice");
    let price = b.join(bmap, price_all);
    let d2 = b.join(bmap, disc);
    // Q6 revenue is sum(l_extendedprice * l_discount)
    let rev = b.mul(price, d2);
    let total = b.sum(rev);
    let n = b.count(both);
    b.export("revenue", total);
    b.export("lineitems", n);
    b.finish()
}

/// Q6 parameters: year 1993..1997, discount ± 0.01 around 0.02..0.09,
/// quantity ∈ {24, 25}.
pub fn q6_params(rng: &mut SmallRng) -> Vec<Value> {
    let y = rng.gen_range(1993..=1997);
    let d = rng.gen_range(2..=9) as f64 / 100.0;
    let q = rng.gen_range(24..=25) as i64;
    vec![
        Value::Date(rbat::Date::from_ymd(y, 1, 1)),
        Value::Float(d - 0.01),
        Value::Float(d + 0.01),
        Value::Float(q as f64),
    ]
}

// silence "unused" for helpers referenced by other query files
#[allow(unused_imports)]
use super::TpchQuery as _UnusedMarker;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_has_group_and_aggregates() {
        let p = q1();
        let l = p.listing();
        assert!(l.contains("group.new"));
        assert!(l.contains("aggr.sum_grouped"));
        assert_eq!(p.nparams, 1);
    }

    #[test]
    fn q4_contains_param_independent_thread() {
        let p = q4();
        let l = p.listing();
        assert!(l.contains("batcalc.lt"));
        assert!(l.contains("bat.kunique"));
    }
}
