//! TPC-H queries 12–16.

use rand::rngs::SmallRng;
use rand::Rng;
use rbat::Value;
use rmal::{Program, ProgramBuilder, P};

use super::{fetch, fk_filter};

/// Q12 — shipping modes and order priority: lineitems of one ship mode
/// received within a year, counted by order priority class.
pub fn q12() -> Program {
    let mut b = ProgramBuilder::new("tpch_q12", 2);
    let sm = b.bind("lineitem", "l_shipmode");
    let mode = b.uselect(sm, P(0));
    let lr = b.bind("lineitem", "l_receiptdate");
    let hi = b.add_months(P(1), 12);
    let window = b.select(lr, P(1), hi, true, false);
    let li = b.semijoin(mode, window);
    let map = b.row_map(li);
    let idx = b.bind_idx(crate::schema::IDX_LI_ORDERS);
    let lord = b.join(map, idx);
    let prio = {
        let op = b.bind("orders", "o_orderpriority");
        b.join(lord, op)
    };
    let g = b.group(prio);
    let cnt = b.grp_count(prio, g);
    let n = b.count(li);
    let classes = b.count(cnt);
    b.export("lineitems", n);
    b.export("priority_classes", classes);
    b.finish()
}

/// Q12 parameters: ship mode, year 1993..1997.
pub fn q12_params(rng: &mut SmallRng) -> Vec<Value> {
    let mode = crate::text::pick(rng, &crate::text::SHIPMODES);
    let y = rng.gen_range(1993..=1997);
    vec![Value::str(mode), Value::Date(rbat::Date::from_ymd(y, 1, 1))]
}

/// Q13 — customer distribution: orders whose comment does *not* match the
/// given word pair, counted per customer.
pub fn q13() -> Program {
    let mut b = ProgramBuilder::new("tpch_q13", 1);
    let oc = b.bind("orders", "o_comment");
    let matching = b.like(oc, P(0));
    let all = b.bind("orders", "o_custkey");
    let kept = b.diff(all, matching);
    let map = b.row_map(kept);
    let cust = fetch(&mut b, map, "orders", "o_custkey");
    let g = b.group(cust);
    let cnt = b.grp_count(cust, g);
    let customers = b.count(cnt);
    let orders = b.count(kept);
    b.export("orders", orders);
    b.export("customers", customers);
    b.finish()
}

/// Q13 parameters: a `%word1%word2%` comment pattern.
pub fn q13_params(rng: &mut SmallRng) -> Vec<Value> {
    let w1 = if rng.gen_bool(0.5) {
        "special"
    } else {
        "pending"
    };
    let w2 = crate::text::pick(rng, &["requests", "packages", "accounts", "deposits"]);
    vec![Value::str(&format!("%{w1}%{w2}%"))]
}

/// Q14 — promotion effect: revenue of PROMO parts vs all parts within one
/// shipping month. Every instance uses a different month — the paper's
/// counter-example with near-zero reuse (Table II / Fig. 5b).
pub fn q14() -> Program {
    let mut b = ProgramBuilder::new("tpch_q14", 1);
    let ls = b.bind("lineitem", "l_shipdate");
    let hi = b.add_months(P(0), 1);
    let sel = b.select(ls, P(0), hi, true, false);
    let map = b.row_map(sel);
    let rev = super::revenue(&mut b, map);
    let idx = b.bind_idx(crate::schema::IDX_LI_PART);
    let lpart = b.join(map, idx);
    let ptype = {
        let pt = b.bind("part", "p_type");
        b.join(lpart, pt)
    };
    let promo = b.like(ptype, Value::str("PROMO%"));
    let pmap = b.row_map(promo);
    let prev = b.join(pmap, rev);
    let promo_rev = b.sum(prev);
    let total_rev = b.sum(rev);
    b.export("promo_revenue", promo_rev);
    b.export("total_revenue", total_rev);
    b.finish()
}

/// Q14 parameters: first of month in 1993-01 .. 1997-12 (60 values).
pub fn q14_params(rng: &mut SmallRng) -> Vec<Value> {
    let n = rng.gen_range(0..60);
    let y = 1993 + n / 12;
    let m = 1 + n % 12;
    vec![Value::Date(rbat::Date::from_ymd(y, m, 1))]
}

/// Q15 — top supplier: supplier revenue over one quarter, maximum picked.
pub fn q15() -> Program {
    let mut b = ProgramBuilder::new("tpch_q15", 1);
    let ls = b.bind("lineitem", "l_shipdate");
    let hi = b.add_months(P(0), 3);
    let sel = b.select(ls, P(0), hi, true, false);
    let map = b.row_map(sel);
    let rev = super::revenue(&mut b, map);
    let sk = fetch(&mut b, map, "lineitem", "l_suppkey");
    let g = b.group(sk);
    let sums = b.grp_sum(rev, g);
    let best = b.max(sums);
    let suppliers = b.count(sums);
    b.export("max_revenue", best);
    b.export("suppliers", suppliers);
    b.finish()
}

/// Q15 parameters: first of month in 1993-01 .. 1997-10.
pub fn q15_params(rng: &mut SmallRng) -> Vec<Value> {
    let n = rng.gen_range(0..58);
    let y = 1993 + n / 12;
    let m = 1 + n % 12;
    vec![Value::Date(rbat::Date::from_ymd(y, m, 1))]
}

/// Q16 — parts/supplier relationship: parts *not* of one brand and type
/// prefix within a size band, excluding complained-about suppliers. The
/// supplier exclusion thread is parameter-independent (the source of the
/// 42.9 % inter-query reuse in Table II).
pub fn q16() -> Program {
    let mut b = ProgramBuilder::new("tpch_q16", 4);
    // parameter-independent: suppliers with complaints
    let sc = b.bind("supplier", "s_comment");
    let complained = b.like(sc, Value::str("%Customer Complaints%"));
    let ps_of_bad = fk_filter(&mut b, crate::schema::IDX_PS_SUPP, complained);
    // parametric part restriction
    let pb = b.bind("part", "p_brand");
    let branded = b.uselect(pb, P(0));
    let pall = b.bind("part", "p_partkey");
    let unbranded = b.diff(pall, branded);
    let pt = b.bind("part", "p_type");
    let typed = b.like(pt, P(1));
    let untyped = b.diff(unbranded, typed);
    let psz = b.bind("part", "p_size");
    let sized = b.select_closed(psz, P(2), P(3));
    let parts = b.semijoin(untyped, sized);
    let ps_of_parts = fk_filter(&mut b, crate::schema::IDX_PS_PART, parts);
    let ps_ok = b.diff(ps_of_parts, ps_of_bad);
    let map = b.row_map(ps_ok);
    let sk = fetch(&mut b, map, "partsupp", "ps_suppkey");
    let rsk = b.reverse(sk);
    let uniq = b.kunique(rsk);
    let suppliers = b.count(uniq);
    let rows = b.count(ps_ok);
    b.export("supplier_cnt", suppliers);
    b.export("partsupp_rows", rows);
    b.finish()
}

/// Q16 parameters: brand, type prefix, size band `[lo, lo+8]`.
pub fn q16_params(rng: &mut SmallRng) -> Vec<Value> {
    let brand = crate::text::brand(rng);
    let t1 = crate::text::pick(rng, &crate::text::TYPE_S1);
    let size = rng.gen_range(1..=42i64);
    vec![
        Value::str(&brand),
        Value::str(&format!("{t1}%")),
        Value::Int(size),
        Value::Int(size + 8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q16_has_constant_complaints_thread() {
        let l = q16().listing();
        assert!(l.contains("Customer Complaints"));
    }

    #[test]
    fn q14_param_count() {
        assert_eq!(q14().nparams, 1);
    }
}
