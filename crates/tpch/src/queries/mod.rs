//! The 22 TPC-H queries as MAL query templates.
//!
//! Each template is a structurally faithful simplification of the plan
//! MonetDB's SQL front end produces (paper Fig. 1): operator threads start
//! at `sql.bind`, parameters are factored out (`A0..An`), foreign-key joins
//! go through join indices, and sub-query/outer-query commonality is left
//! in the plan exactly where SQL compilation would put it (no manual CSE) —
//! that duplication is what the recycler's *intra-query* reuse feeds on
//! (paper Table II).
//!
//! Parameter generators follow the TPC-H 2.6 substitution domains, which
//! determine the *inter-query* overlap between instances of one template:
//! small domains (Q18's four quantity levels) overlap often, continuous
//! domains (Q14's sixty months) almost never.

mod q01_06;
mod q07_11;
mod q12_16;
mod q17_22;

use rand::rngs::SmallRng;
use rbat::Value;
use rmal::{Program, ProgramBuilder, Var};

/// A TPC-H query: its template (build once, optimise once, run many) and a
/// generator for substitution parameters.
pub struct TpchQuery {
    /// Query number (1..=22).
    pub number: u8,
    /// The MAL template.
    pub template: Program,
    /// Substitution-parameter generator.
    pub params: fn(&mut SmallRng) -> Vec<Value>,
}

/// Build query `n` (1..=22). Panics outside the range.
pub fn query(n: u8) -> TpchQuery {
    let (template, params): (Program, fn(&mut SmallRng) -> Vec<Value>) = match n {
        1 => (q01_06::q1(), q01_06::q1_params),
        2 => (q01_06::q2(), q01_06::q2_params),
        3 => (q01_06::q3(), q01_06::q3_params),
        4 => (q01_06::q4(), q01_06::q4_params),
        5 => (q01_06::q5(), q01_06::q5_params),
        6 => (q01_06::q6(), q01_06::q6_params),
        7 => (q07_11::q7(), q07_11::q7_params),
        8 => (q07_11::q8(), q07_11::q8_params),
        9 => (q07_11::q9(), q07_11::q9_params),
        10 => (q07_11::q10(), q07_11::q10_params),
        11 => (q07_11::q11(), q07_11::q11_params),
        12 => (q12_16::q12(), q12_16::q12_params),
        13 => (q12_16::q13(), q12_16::q13_params),
        14 => (q12_16::q14(), q12_16::q14_params),
        15 => (q12_16::q15(), q12_16::q15_params),
        16 => (q12_16::q16(), q12_16::q16_params),
        17 => (q17_22::q17(), q17_22::q17_params),
        18 => (q17_22::q18(), q17_22::q18_params),
        19 => (q17_22::q19(), q17_22::q19_params),
        20 => (q17_22::q20(), q17_22::q20_params),
        21 => (q17_22::q21(), q17_22::q21_params),
        22 => (q17_22::q22(), q17_22::q22_params),
        other => panic!("TPC-H has queries 1..=22, got {other}"),
    };
    TpchQuery {
        number: n,
        template,
        params,
    }
}

/// All 22 queries, freshly built.
pub fn all_queries() -> Vec<TpchQuery> {
    (1..=22).map(query).collect()
}

// ---- shared plan idioms -----------------------------------------------

/// Fetch a column of `table` through a candidate row map
/// (`join(map, bind(table, col))`).
pub(crate) fn fetch(b: &mut ProgramBuilder, map: Var, table: &str, col: &str) -> Var {
    let c = b.bind(table, col);
    b.join(map, c)
}

/// Restrict a foreign-key join index to the rows whose *target* is among
/// `targets` (a BAT headed by target OIDs). Returns `(from-oid, to-oid)`.
pub(crate) fn fk_filter(b: &mut ProgramBuilder, idx: &str, targets: Var) -> Var {
    let ix = b.bind_idx(idx);
    let r = b.reverse(ix);
    let s = b.semijoin(r, targets);
    b.reverse(s)
}

/// The TPC-H revenue expression `l_extendedprice * (1 - l_discount)`
/// fetched through a lineitem row map.
pub(crate) fn revenue(b: &mut ProgramBuilder, map: Var) -> Var {
    let price = fetch(b, map, "lineitem", "l_extendedprice");
    let disc = fetch(b, map, "lineitem", "l_discount");
    let pd = b.mul(price, disc);
    b.sub(price, pd)
}

/// A random first-of-month date within `[year_lo, year_hi]`.
pub(crate) fn month_start(rng: &mut SmallRng, year_lo: i32, year_hi: i32) -> Value {
    use rand::Rng;
    let y = rng.gen_range(year_lo..=year_hi);
    let m = rng.gen_range(1..=12);
    Value::Date(rbat::Date::from_ymd(y, m, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_queries_build() {
        let qs = all_queries();
        assert_eq!(qs.len(), 22);
        let mut rng = SmallRng::seed_from_u64(1);
        for q in &qs {
            assert!(!q.template.instrs.is_empty(), "q{} empty", q.number);
            let p = (q.params)(&mut rng);
            assert_eq!(
                p.len(),
                q.template.nparams as usize,
                "q{} params arity",
                q.number
            );
        }
    }

    #[test]
    fn templates_have_unique_ids() {
        let a = query(1);
        let b = query(1);
        assert_ne!(a.template.id, b.template.id);
    }
}
