//! TPC-H refresh functions RF1/RF2 for the update experiments (§7.4).
//!
//! Each update block inserts a handful of new customer orders (7–8 rows
//! into `orders`, 25–56 rows into `lineitem`) and deletes a similar number
//! of old orders together with their lineitems — the shape the paper
//! injects between query blocks in Figures 12 and 13.

use rand::rngs::SmallRng;
use rand::Rng;
use rbat::delta::Row;
use rbat::{Catalog, Date, Value};

use crate::text;

/// Rows to insert/delete for one refresh block.
#[derive(Debug, Default)]
pub struct UpdateBlock {
    /// New `orders` rows.
    pub order_rows: Vec<Row>,
    /// New `lineitem` rows.
    pub lineitem_rows: Vec<Row>,
    /// OIDs to delete from `orders`.
    pub delete_orders: Vec<u64>,
    /// OIDs to delete from `lineitem`.
    pub delete_lineitems: Vec<u64>,
}

/// RF1: build insert rows for a block of `n_orders` new orders. Keys
/// continue after the current maximum.
pub fn insert_block(catalog: &Catalog, rng: &mut SmallRng, n_orders: usize) -> UpdateBlock {
    let norders = catalog.table("orders").expect("orders exists").nrows();
    let ncust = catalog.table("customer").expect("customer exists").nrows();
    let npart = catalog.table("part").expect("part exists").nrows();
    let nsupp = catalog.table("supplier").expect("supplier exists").nrows();
    let mut block = UpdateBlock::default();
    for k in 0..n_orders {
        let okey = (norders + k) as i64;
        let odate = Date::from_ymd(1998, rng.gen_range(1..=8), rng.gen_range(1..=28));
        let nlines = rng.gen_range(3..=7usize);
        let mut total = 0.0;
        for ln in 0..nlines {
            let part = rng.gen_range(0..npart);
            let qty = rng.gen_range(1..=50) as f64;
            let price = qty * 95.0;
            total += price;
            let ship = odate.add_days(rng.gen_range(1..=60));
            block.lineitem_rows.push(vec![
                Value::Int(okey),
                Value::Int(part as i64),
                Value::Int(rng.gen_range(0..nsupp) as i64),
                Value::Int(ln as i64 + 1),
                Value::Float(qty),
                Value::Float(price),
                Value::Float(rng.gen_range(0..=10) as f64 / 100.0),
                Value::Float(rng.gen_range(0..=8) as f64 / 100.0),
                Value::str("N"),
                Value::str("O"),
                Value::Date(ship),
                Value::Date(odate.add_days(45)),
                Value::Date(ship.add_days(rng.gen_range(1..=30))),
                Value::str(text::pick(rng, &text::SHIPINSTRUCT)),
                Value::str(text::pick(rng, &text::SHIPMODES)),
                Value::str(&text::comment(rng, 4, 0)),
            ]);
        }
        block.order_rows.push(vec![
            Value::Int(okey),
            Value::Int(rng.gen_range(0..ncust) as i64),
            Value::str("O"),
            Value::Float(total),
            Value::Date(odate),
            Value::str(text::pick(rng, &text::PRIORITIES)),
            Value::str(&format!("Clerk#{:09}", rng.gen_range(0..1000))),
            Value::Int(0),
            Value::str(&text::comment(rng, 6, 10)),
        ]);
    }
    block
}

/// RF2: pick `n_orders` random existing orders and return the OIDs of the
/// orders and of all their lineitems for deletion.
pub fn delete_block(catalog: &Catalog, rng: &mut SmallRng, n_orders: usize) -> UpdateBlock {
    let orders = catalog.table("orders").expect("orders exists");
    let mut block = UpdateBlock::default();
    if orders.nrows() == 0 {
        return block;
    }
    let okeys = catalog.bind("orders", "o_orderkey").expect("orders bound");
    let mut victims: Vec<i64> = Vec::new();
    for _ in 0..n_orders {
        let oid = rng.gen_range(0..orders.nrows()) as u64;
        if !block.delete_orders.contains(&oid) {
            block.delete_orders.push(oid);
            if let Some(k) = okeys.tail().value(oid as usize).as_int() {
                victims.push(k);
            }
        }
    }
    // find the lineitems referencing the victim order keys
    let lkeys = catalog
        .bind("lineitem", "l_orderkey")
        .expect("lineitem bound");
    for i in 0..lkeys.len() {
        if let Some(k) = lkeys.tail().value(i).as_int() {
            if victims.contains(&k) {
                block.delete_lineitems.push(i as u64);
            }
        }
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchScale};
    use rand::SeedableRng;

    #[test]
    fn insert_block_shapes() {
        let cat = generate(TpchScale::new(0.001));
        let mut rng = SmallRng::seed_from_u64(5);
        let block = insert_block(&cat, &mut rng, 8);
        assert_eq!(block.order_rows.len(), 8);
        assert!(block.lineitem_rows.len() >= 24);
        assert_eq!(block.order_rows[0].len(), 9);
        assert_eq!(block.lineitem_rows[0].len(), 16);
    }

    #[test]
    fn delete_block_consistent() {
        let cat = generate(TpchScale::new(0.001));
        let mut rng = SmallRng::seed_from_u64(5);
        let block = delete_block(&cat, &mut rng, 5);
        assert!(!block.delete_orders.is_empty());
        // every victim lineitem references a victim order key
        let lk = cat.bind("lineitem", "l_orderkey").unwrap();
        let ok = cat.bind("orders", "o_orderkey").unwrap();
        let victim_keys: Vec<Value> = block
            .delete_orders
            .iter()
            .map(|&o| ok.tail().value(o as usize))
            .collect();
        for &li in &block.delete_lineitems {
            let key = lk.tail().value(li as usize);
            assert!(victim_keys.contains(&key));
        }
    }

    #[test]
    fn applying_block_keeps_engine_running() {
        let cat = generate(TpchScale::new(0.001));
        let mut engine = rmal::Engine::new(cat);
        let mut rng = SmallRng::seed_from_u64(5);
        let ins = insert_block(&engine.catalog, &mut rng, 4);
        engine.update("orders", ins.order_rows, vec![]).unwrap();
        engine
            .update("lineitem", ins.lineitem_rows, vec![])
            .unwrap();
        let del = delete_block(&engine.catalog, &mut rng, 3);
        engine
            .update("lineitem", vec![], del.delete_lineitems)
            .unwrap();
        engine.update("orders", vec![], del.delete_orders).unwrap();
        // a query still runs
        let q = crate::queries::query(6);
        let mut t = q.template;
        engine.optimize(&mut t);
        let mut prng = SmallRng::seed_from_u64(1);
        let p = (q.params)(&mut prng);
        engine.run(&t, &p).unwrap();
    }
}
