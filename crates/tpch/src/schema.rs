//! Table schemas and join-index definitions.

use rbat::catalog::JoinIndexDef;
use rbat::LogicalType as T;

/// Join index: lineitem.l_orderkey → orders (the paper's `li_fkey`).
pub const IDX_LI_ORDERS: &str = "li_fkey";
/// Join index: lineitem.l_partkey → part.
pub const IDX_LI_PART: &str = "li_part_fkey";
/// Join index: lineitem.l_suppkey → supplier.
pub const IDX_LI_SUPP: &str = "li_supp_fkey";
/// Join index: orders.o_custkey → customer.
pub const IDX_ORD_CUST: &str = "ord_cust_fkey";
/// Join index: customer.c_nationkey → nation.
pub const IDX_CUST_NATION: &str = "cust_nation_fkey";
/// Join index: supplier.s_nationkey → nation.
pub const IDX_SUPP_NATION: &str = "supp_nation_fkey";
/// Join index: nation.n_regionkey → region.
pub const IDX_NATION_REGION: &str = "nation_region_fkey";
/// Join index: partsupp.ps_partkey → part.
pub const IDX_PS_PART: &str = "ps_part_fkey";
/// Join index: partsupp.ps_suppkey → supplier.
pub const IDX_PS_SUPP: &str = "ps_supp_fkey";

/// Column schema of each TPC-H table, in definition order.
pub fn table_schema(table: &str) -> Vec<(&'static str, T)> {
    match table {
        "region" => vec![
            ("r_regionkey", T::Int),
            ("r_name", T::Str),
            ("r_comment", T::Str),
        ],
        "nation" => vec![
            ("n_nationkey", T::Int),
            ("n_name", T::Str),
            ("n_regionkey", T::Int),
            ("n_comment", T::Str),
        ],
        "supplier" => vec![
            ("s_suppkey", T::Int),
            ("s_name", T::Str),
            ("s_address", T::Str),
            ("s_nationkey", T::Int),
            ("s_phone", T::Str),
            ("s_acctbal", T::Float),
            ("s_comment", T::Str),
        ],
        "customer" => vec![
            ("c_custkey", T::Int),
            ("c_name", T::Str),
            ("c_address", T::Str),
            ("c_nationkey", T::Int),
            ("c_phone", T::Str),
            ("c_acctbal", T::Float),
            ("c_mktsegment", T::Str),
            ("c_comment", T::Str),
        ],
        "part" => vec![
            ("p_partkey", T::Int),
            ("p_name", T::Str),
            ("p_mfgr", T::Str),
            ("p_brand", T::Str),
            ("p_type", T::Str),
            ("p_size", T::Int),
            ("p_container", T::Str),
            ("p_retailprice", T::Float),
            ("p_comment", T::Str),
        ],
        "partsupp" => vec![
            ("ps_partkey", T::Int),
            ("ps_suppkey", T::Int),
            ("ps_availqty", T::Int),
            ("ps_supplycost", T::Float),
        ],
        "orders" => vec![
            ("o_orderkey", T::Int),
            ("o_custkey", T::Int),
            ("o_orderstatus", T::Str),
            ("o_totalprice", T::Float),
            ("o_orderdate", T::Date),
            ("o_orderpriority", T::Str),
            ("o_clerk", T::Str),
            ("o_shippriority", T::Int),
            ("o_comment", T::Str),
        ],
        "lineitem" => vec![
            ("l_orderkey", T::Int),
            ("l_partkey", T::Int),
            ("l_suppkey", T::Int),
            ("l_linenumber", T::Int),
            ("l_quantity", T::Float),
            ("l_extendedprice", T::Float),
            ("l_discount", T::Float),
            ("l_tax", T::Float),
            ("l_returnflag", T::Str),
            ("l_linestatus", T::Str),
            ("l_shipdate", T::Date),
            ("l_commitdate", T::Date),
            ("l_receiptdate", T::Date),
            ("l_shipinstruct", T::Str),
            ("l_shipmode", T::Str),
            ("l_comment", T::Str),
        ],
        other => panic!("unknown TPC-H table {other}"),
    }
}

/// All foreign-key join indices registered by the generator.
pub fn join_indices() -> Vec<JoinIndexDef> {
    let def = |name: &str, ft: &str, fc: &str, tt: &str, tk: &str| JoinIndexDef {
        name: name.into(),
        from_table: ft.into(),
        from_column: fc.into(),
        to_table: tt.into(),
        to_key: tk.into(),
    };
    vec![
        def(
            IDX_LI_ORDERS,
            "lineitem",
            "l_orderkey",
            "orders",
            "o_orderkey",
        ),
        def(IDX_LI_PART, "lineitem", "l_partkey", "part", "p_partkey"),
        def(
            IDX_LI_SUPP,
            "lineitem",
            "l_suppkey",
            "supplier",
            "s_suppkey",
        ),
        def(IDX_ORD_CUST, "orders", "o_custkey", "customer", "c_custkey"),
        def(
            IDX_CUST_NATION,
            "customer",
            "c_nationkey",
            "nation",
            "n_nationkey",
        ),
        def(
            IDX_SUPP_NATION,
            "supplier",
            "s_nationkey",
            "nation",
            "n_nationkey",
        ),
        def(
            IDX_NATION_REGION,
            "nation",
            "n_regionkey",
            "region",
            "r_regionkey",
        ),
        def(IDX_PS_PART, "partsupp", "ps_partkey", "part", "p_partkey"),
        def(
            IDX_PS_SUPP,
            "partsupp",
            "ps_suppkey",
            "supplier",
            "s_suppkey",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_nonempty() {
        for t in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert!(!table_schema(t).is_empty());
        }
    }

    #[test]
    fn indices_reference_schema_columns() {
        for d in join_indices() {
            let fs = table_schema(&d.from_table);
            assert!(fs.iter().any(|(c, _)| *c == d.from_column), "{d:?}");
            let ts = table_schema(&d.to_table);
            assert!(ts.iter().any(|(c, _)| *c == d.to_key), "{d:?}");
        }
    }
}
