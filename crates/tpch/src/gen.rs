//! The TPC-H data generator: deterministic, in-process, scale-factor based.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rbat::{Catalog, Date, TableBuilder, Value};

use crate::schema::{join_indices, table_schema};
use crate::text;

/// Scale configuration. TPC-H row counts scale linearly with `sf`
/// (SF 1 ≈ 1 GB in the paper's runs; the experiments here default to
/// laptop-scale fractions — all reported quantities are relative, see
/// DESIGN.md §3).
#[derive(Debug, Clone, Copy)]
pub struct TpchScale {
    /// Scale factor.
    pub sf: f64,
    /// RNG seed (same seed + same sf ⇒ identical database).
    pub seed: u64,
}

impl TpchScale {
    /// Scale with the default seed.
    pub fn new(sf: f64) -> TpchScale {
        TpchScale { sf, seed: 42 }
    }

    /// Rows in `supplier`.
    pub fn suppliers(&self) -> usize {
        ((10_000.0 * self.sf) as usize).max(10)
    }

    /// Rows in `customer`.
    pub fn customers(&self) -> usize {
        ((150_000.0 * self.sf) as usize).max(30)
    }

    /// Rows in `part`.
    pub fn parts(&self) -> usize {
        ((200_000.0 * self.sf) as usize).max(40)
    }

    /// Rows in `orders`.
    pub fn orders(&self) -> usize {
        ((1_500_000.0 * self.sf) as usize).max(150)
    }
}

/// First order date of the TPC-H population.
pub const START_DATE: (i32, i32, i32) = (1992, 1, 1);
/// Last order date of the TPC-H population.
pub const END_DATE: (i32, i32, i32) = (1998, 8, 2);

fn random_date(rng: &mut SmallRng) -> Date {
    let lo = Date::from_ymd(START_DATE.0, START_DATE.1, START_DATE.2).0;
    let hi = Date::from_ymd(END_DATE.0, END_DATE.1, END_DATE.2).0;
    Date(rng.gen_range(lo..=hi))
}

/// Generate a complete TPC-H catalog (8 tables + 9 join indices).
pub fn generate(scale: TpchScale) -> Catalog {
    let mut rng = SmallRng::seed_from_u64(scale.seed);
    let mut cat = Catalog::new();

    // region
    let mut tb = builder("region");
    for (i, name) in text::REGIONS.iter().enumerate() {
        tb.push_row(&[
            Value::Int(i as i64),
            Value::str(name),
            Value::str(&text::comment(&mut rng, 4, 0)),
        ]);
    }
    cat.add_table(tb.finish());

    // nation
    let mut tb = builder("nation");
    for (i, (name, region)) in text::NATIONS.iter().enumerate() {
        tb.push_row(&[
            Value::Int(i as i64),
            Value::str(name),
            Value::Int(*region as i64),
            Value::str(&text::comment(&mut rng, 4, 0)),
        ]);
    }
    cat.add_table(tb.finish());

    // supplier
    let nsupp = scale.suppliers();
    let mut tb = builder("supplier");
    for i in 0..nsupp {
        let nation = rng.gen_range(0..25usize);
        // ~1 in 20 suppliers carries the Q16/Q21 "Customer Complaints" tag
        let mut comment = text::comment(&mut rng, 5, 0);
        if rng.gen_range(0..20) == 0 {
            comment.push_str(" Customer Complaints");
        }
        tb.push_row(&[
            Value::Int(i as i64),
            Value::str(&format!("Supplier#{i:09}")),
            Value::str(&text::comment(&mut rng, 2, 0)),
            Value::Int(nation as i64),
            Value::str(&text::phone(&mut rng, nation)),
            Value::Float(rng.gen_range(-999.99..9999.99)),
            Value::str(&comment),
        ]);
    }
    cat.add_table(tb.finish());

    // customer
    let ncust = scale.customers();
    let mut tb = builder("customer");
    for i in 0..ncust {
        let nation = rng.gen_range(0..25usize);
        tb.push_row(&[
            Value::Int(i as i64),
            Value::str(&format!("Customer#{i:09}")),
            Value::str(&text::comment(&mut rng, 2, 0)),
            Value::Int(nation as i64),
            Value::str(&text::phone(&mut rng, nation)),
            Value::Float(rng.gen_range(-999.99..9999.99)),
            Value::str(text::pick(&mut rng, &text::SEGMENTS)),
            Value::str(&text::comment(&mut rng, 6, 8)),
        ]);
    }
    cat.add_table(tb.finish());

    // part
    let npart = scale.parts();
    let mut tb = builder("part");
    for i in 0..npart {
        tb.push_row(&[
            Value::Int(i as i64),
            Value::str(&text::part_name(&mut rng)),
            Value::str(&format!("Manufacturer#{}", rng.gen_range(1..=5))),
            Value::str(&text::brand(&mut rng)),
            Value::str(&text::part_type(&mut rng)),
            Value::Int(rng.gen_range(1..=50)),
            Value::str(&text::container(&mut rng)),
            Value::Float(900.0 + (i % 1000) as f64 / 10.0),
            Value::str(&text::comment(&mut rng, 3, 0)),
        ]);
    }
    cat.add_table(tb.finish());

    // partsupp: 4 suppliers per part
    let mut tb = builder("partsupp");
    for p in 0..npart {
        for s in 0..4 {
            tb.push_row(&[
                Value::Int(p as i64),
                Value::Int(((p + s * (nsupp / 4).max(1)) % nsupp) as i64),
                Value::Int(rng.gen_range(1..10_000)),
                Value::Float(rng.gen_range(1.0..1000.0)),
            ]);
        }
    }
    cat.add_table(tb.finish());

    // orders + lineitem
    let norders = scale.orders();
    let mut ob = builder("orders");
    let mut lb = builder("lineitem");
    for o in 0..norders {
        let odate = random_date(&mut rng);
        let nlines = rng.gen_range(1..=7usize);
        let mut total = 0.0f64;
        for ln in 0..nlines {
            let part = rng.gen_range(0..npart);
            let qty = rng.gen_range(1..=50) as f64;
            let price = qty * (900.0 + (part % 1000) as f64 / 10.0) / 10.0;
            total += price;
            let ship = odate.add_days(rng.gen_range(1..=121));
            let commit = odate.add_days(rng.gen_range(30..=90));
            let receipt = ship.add_days(rng.gen_range(1..=30));
            // return flag: R/A for old receipts, N for recent (TPC-H rule)
            let cutoff = Date::from_ymd(1995, 6, 17);
            let flag = if receipt < cutoff {
                if rng.gen_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let status = if ship < cutoff { "F" } else { "O" };
            lb.push_row(&[
                Value::Int(o as i64),
                Value::Int(part as i64),
                Value::Int(rng.gen_range(0..nsupp) as i64),
                Value::Int(ln as i64 + 1),
                Value::Float(qty),
                Value::Float(price),
                Value::Float(rng.gen_range(0..=10) as f64 / 100.0),
                Value::Float(rng.gen_range(0..=8) as f64 / 100.0),
                Value::str(flag),
                Value::str(status),
                Value::Date(ship),
                Value::Date(commit),
                Value::Date(receipt),
                Value::str(text::pick(&mut rng, &text::SHIPINSTRUCT)),
                Value::str(text::pick(&mut rng, &text::SHIPMODES)),
                Value::str(&text::comment(&mut rng, 4, 0)),
            ]);
        }
        ob.push_row(&[
            Value::Int(o as i64),
            Value::Int(rng.gen_range(0..ncust) as i64),
            Value::str(if rng.gen_bool(0.5) { "F" } else { "O" }),
            Value::Float(total),
            Value::Date(odate),
            Value::str(text::pick(&mut rng, &text::PRIORITIES)),
            Value::str(&format!("Clerk#{:09}", rng.gen_range(0..1000))),
            Value::Int(0),
            Value::str(&text::comment(&mut rng, 6, 10)),
        ]);
    }
    cat.add_table(ob.finish());
    cat.add_table(lb.finish());

    for def in join_indices() {
        cat.add_join_index(def)
            .expect("index over generated tables");
    }
    cat
}

fn builder(table: &str) -> TableBuilder {
    let mut tb = TableBuilder::new(table);
    for (name, ty) in table_schema(table) {
        tb = tb.column(name, ty);
    }
    tb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_generates_all_tables() {
        let cat = generate(TpchScale::new(0.001));
        for t in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert!(cat.table(t).unwrap().nrows() > 0, "{t} empty");
        }
        assert_eq!(cat.table("region").unwrap().nrows(), 5);
        assert_eq!(cat.table("nation").unwrap().nrows(), 25);
        assert!(cat.table("lineitem").unwrap().nrows() >= cat.table("orders").unwrap().nrows());
    }

    #[test]
    fn deterministic() {
        let a = generate(TpchScale::new(0.001));
        let b = generate(TpchScale::new(0.001));
        let ba = a.bind("orders", "o_totalprice").unwrap();
        let bb = b.bind("orders", "o_totalprice").unwrap();
        assert_eq!(ba.len(), bb.len());
        for i in 0..ba.len() {
            assert_eq!(ba.tail().value(i), bb.tail().value(i));
        }
    }

    #[test]
    fn join_indices_resolve() {
        let cat = generate(TpchScale::new(0.001));
        let idx = cat.bind_idx(crate::schema::IDX_LI_ORDERS).unwrap();
        assert_eq!(idx.len(), cat.table("lineitem").unwrap().nrows());
        // every lineitem must resolve (fks generated consistently)
        assert!(!idx.tail().has_nulls());
    }
}
