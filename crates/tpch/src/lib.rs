//! # tpch — the TPC-H substrate for the recycler experiments
//!
//! Everything paper §7 needs: a deterministic, in-process generator for the
//! eight TPC-H tables at an arbitrary scale factor, the 22 benchmark
//! queries expressed as MAL query templates (structurally faithful
//! simplifications — see DESIGN.md §3), per-query parameter generators
//! following the TPC-H 2.6 substitution-parameter domains, the RF1/RF2
//! refresh functions for the update experiments, and workload builders for
//! the paper's micro-benchmarks and the 200-query mixed batch.

#![deny(missing_docs)]

pub mod gen;
pub mod queries;
pub mod refresh;
pub mod schema;
pub mod text;
pub mod workload;

pub use gen::{generate, TpchScale};
pub use queries::{all_queries, query, TpchQuery};
pub use refresh::{delete_block, insert_block, UpdateBlock};
pub use workload::{mixed_batch, query_batch, BatchItem};
