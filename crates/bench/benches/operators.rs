//! Micro-benchmarks of the binary relational algebra — the per-operator
//! costs that determine which intermediates are worth recycling.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rbat::ops::{self, GrpFunc, SelectBounds};
use rbat::{Bat, Column, Props, Value};

fn make_int_bat(n: usize) -> Bat {
    let vals: Vec<i64> = (0..n as i64)
        .map(|i| (i * 2_654_435_761) % n as i64)
        .collect();
    Bat::from_tail(Column::from_ints(vals))
}

fn make_oid_pair(n: usize) -> (Bat, Bat) {
    let l = Bat::new(
        Column::from_oids((0..n as u64).collect()),
        Column::from_oids((0..n as u64).map(|i| (i * 7) % n as u64).collect()),
        Props::default(),
    );
    let r = Bat::from_tail(Column::from_ints((0..n as i64).collect()));
    (l, r)
}

fn bench_select(c: &mut Criterion) {
    let mut g = c.benchmark_group("select");
    for n in [10_000usize, 100_000] {
        let b = make_int_bat(n);
        let bounds = SelectBounds::closed(Value::Int(n as i64 / 4), Value::Int(n as i64 / 2));
        g.bench_with_input(BenchmarkId::new("range_unsorted", n), &n, |bench, _| {
            bench.iter(|| ops::select(black_box(&b), black_box(&bounds)).unwrap())
        });
        let sorted = Bat::from_tail(Column::from_ints((0..n as i64).collect()));
        g.bench_with_input(BenchmarkId::new("range_sorted_view", n), &n, |bench, _| {
            bench.iter(|| ops::select(black_box(&sorted), black_box(&bounds)).unwrap())
        });
    }
    g.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("join");
    for n in [10_000usize, 100_000] {
        let (l, r) = make_oid_pair(n);
        g.bench_with_input(BenchmarkId::new("fetch_dense", n), &n, |bench, _| {
            bench.iter(|| ops::join(black_box(&l), black_box(&r)).unwrap())
        });
        let r_hash = Bat::new(
            Column::from_oids((0..n as u64).rev().collect()),
            Column::from_ints((0..n as i64).collect()),
            Props::default(),
        );
        g.bench_with_input(BenchmarkId::new("hash", n), &n, |bench, _| {
            bench.iter(|| ops::join(black_box(&l), black_box(&r_hash)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("semijoin", n), &n, |bench, _| {
            bench.iter(|| ops::semijoin(black_box(&l), black_box(&r_hash)).unwrap())
        });
    }
    g.finish();
}

fn bench_group_aggr(c: &mut Criterion) {
    let mut g = c.benchmark_group("group_aggr");
    for n in [10_000usize, 100_000] {
        let keys = Bat::from_tail(Column::from_ints((0..n as i64).map(|i| i % 1000).collect()));
        let vals = Bat::from_tail(Column::from_floats((0..n).map(|i| i as f64).collect()));
        g.bench_with_input(BenchmarkId::new("group", n), &n, |bench, _| {
            bench.iter(|| ops::group(black_box(&keys)).unwrap())
        });
        let groups = ops::group(&keys).unwrap();
        g.bench_with_input(BenchmarkId::new("grp_sum", n), &n, |bench, _| {
            bench
                .iter(|| ops::grp_aggr(black_box(&vals), black_box(&groups), GrpFunc::Sum).unwrap())
        });
    }
    g.finish();
}

fn bench_zero_cost_views(c: &mut Criterion) {
    let b = make_int_bat(100_000);
    c.bench_function("view/reverse", |bench| {
        bench.iter(|| black_box(&b).reverse())
    });
    c.bench_function("view/mark_t", |bench| {
        bench.iter(|| black_box(&b).mark_t(0))
    });
    c.bench_function("view/mirror", |bench| bench.iter(|| black_box(&b).mirror()));
}

criterion_group!(
    benches,
    bench_select,
    bench_join,
    bench_group_aggr,
    bench_zero_cost_views
);
criterion_main!(benches);
