//! Scaling of the combined-subsumption search (Algorithm 2): the paper
//! reports < 0.5 ms per invocation for k < 10 against a cache of hundreds
//! of instructions (§5.2, §8.3).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rbat::Value;
use recycler::{RecycleMark, Recycler, RecyclerConfig};
use rmal::{Engine, Program};
use skyserver::{generate, microbench, SkyScale};

/// Build an engine whose pool holds `covers` overlapping ra-selections
/// plus `noise` unrelated entries, then measure answering a covered seed.
fn prepared(covers: usize, noise: usize) -> (Engine<Recycler>, Program, Vec<Value>) {
    let cat = generate(SkyScale::new(20_000));
    let mut engine = Engine::with_hook(cat, Recycler::new(RecyclerConfig::default()));
    engine.add_pass(Box::new(RecycleMark));
    let (template, items) = microbench(1, covers.max(2), 0.02, 5);
    let mut t = template;
    engine.optimize(&mut t);
    let mut seed_params = Vec::new();
    for item in &items {
        if item.is_seed {
            seed_params = item.params.clone();
        } else {
            engine.run(&t, &item.params).expect("cover");
        }
    }
    // unrelated pool noise: disjoint narrow selections
    for i in 0..noise {
        let lo = 0.001 * i as f64;
        engine
            .run(&t, &[Value::Float(lo), Value::Float(lo + 0.0005)])
            .expect("noise");
    }
    (engine, t, seed_params)
}

fn bench_combined_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("combined_subsumption");
    g.sample_size(30);
    for k in [2usize, 4, 9] {
        let (mut engine, t, seed) = prepared(k, 0);
        g.bench_with_input(BenchmarkId::new("k_covers", k), &k, |bench, _| {
            bench.iter(|| engine.run(black_box(&t), &seed).unwrap())
        });
    }
    for noise in [100usize, 400, 800] {
        let (mut engine, t, seed) = prepared(4, noise);
        g.bench_with_input(BenchmarkId::new("pool_noise", noise), &noise, |bench, _| {
            bench.iter(|| engine.run(black_box(&t), &seed).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_combined_search);
criterion_main!(benches);
