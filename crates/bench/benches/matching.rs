//! `recycleEntry` overhead: the cost of the matching probe per interpreted
//! instruction — the quantity the paper keeps "well below one microsecond"
//! (§2.2/§3.4), measured against growing pool sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rbat::{Catalog, LogicalType, TableBuilder, Value};
use recycler::{RecycleMark, Recycler, RecyclerConfig};
use rmal::{Engine, Program, ProgramBuilder, P};

fn catalog(rows: i64) -> Catalog {
    let mut cat = Catalog::new();
    let mut tb = TableBuilder::new("t").column("x", LogicalType::Int);
    for i in 0..rows {
        tb.push_row(&[Value::Int((i * 31) % rows)]);
    }
    cat.add_table(tb.finish());
    cat
}

fn template() -> Program {
    let mut b = ProgramBuilder::new("probe", 2);
    let col = b.bind("t", "x");
    let sel = b.select_closed(col, P(0), P(1));
    let n = b.count(sel);
    b.export("n", n);
    b.finish()
}

/// Fill the pool with `entries` distinct select intermediates.
fn filled_engine(entries: usize) -> (Engine<Recycler>, Program) {
    let mut engine = Engine::with_hook(catalog(10_000), Recycler::new(RecyclerConfig::default()));
    engine.add_pass(Box::new(RecycleMark));
    let mut t = template();
    engine.optimize(&mut t);
    for i in 0..entries as i64 {
        engine
            .run(&t, &[Value::Int(i), Value::Int(i)])
            .expect("fill query");
    }
    (engine, t)
}

fn bench_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("recycle_entry_probe");
    for pool_size in [10usize, 100, 1000] {
        let (mut engine, t) = filled_engine(pool_size);
        // hit probe: re-run an instance that is in the pool
        g.bench_with_input(
            BenchmarkId::new("hit", pool_size),
            &pool_size,
            |bench, _| {
                bench.iter(|| {
                    engine
                        .run(black_box(&t), &[Value::Int(1), Value::Int(1)])
                        .unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_overhead_vs_naive(c: &mut Criterion) {
    // the end-to-end price of monitoring when nothing is ever reused:
    // distinct parameters each run, recycler vs naive
    let mut g = c.benchmark_group("monitoring_overhead");
    let mut naive = Engine::new(catalog(10_000));
    let mut nt = template();
    naive.optimize(&mut nt);
    let mut i = 0i64;
    g.bench_function("naive", |bench| {
        bench.iter(|| {
            i += 1;
            naive
                .run(
                    black_box(&nt),
                    &[Value::Int(i % 5000), Value::Int(i % 5000 + 10)],
                )
                .unwrap()
        })
    });
    let (mut engine, t) = filled_engine(0);
    let mut j = 0i64;
    g.bench_function("recycled_all_misses", |bench| {
        bench.iter(|| {
            j += 1;
            engine
                .run(
                    black_box(&t),
                    &[Value::Int(j % 5000), Value::Int(j % 5000 + 10)],
                )
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_probe, bench_overhead_vs_naive);
criterion_main!(benches);
