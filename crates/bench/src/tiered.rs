//! The `tiered_lowmem` scenario: hit retention at the lowmem cap with the
//! residency ladder off vs on.
//!
//! The 1 MiB cap forces the seed recycler to throw cold intermediates
//! away, so a workload that *revisits* its parameters keeps recomputing
//! what the pool just evicted. With the tiering subsystem on, the
//! background collector demotes those entries instead — compressing them
//! in place, then spilling the coldest to disk off-cap — and a revisit
//! pays a decompress (or a record read-back) instead of a recomputation.
//! The scenario drives the *same* cycling parameter alphabet through the
//! same cap both ways and reports the hit ratio, wall time and per-tier
//! traffic; `BENCH_recycler.json` carries both sides so the trajectory
//! keeps proving the ladder retains hits the raw pool loses.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rbat::{Catalog, Value};
use recycler::{EvictionPolicy, RecyclerConfig};
use recycling::DatabaseBuilder;
use rmal::Program;

/// One side (tiering off or on) of the [`tiered_lowmem`] comparison.
#[derive(Debug, Clone)]
pub struct TieredRun {
    /// Was the tiering subsystem (compression + spill) enabled?
    pub tiered: bool,
    /// Queries executed (all cycles).
    pub queries: usize,
    /// Wall time for the whole run.
    pub elapsed: Duration,
    /// Exact-match hits over the run.
    pub hits: u64,
    /// Marked instructions intercepted (the hit-ratio divisor).
    pub monitored: u64,
    /// `hits / monitored` — the headline retention number.
    pub hit_ratio: f64,
    /// Entries evicted (inline + background): what the ladder *avoids*.
    pub evictions: u64,
    /// Inline evictions on the query path (must stay 0 with the
    /// collector on, tiering or not).
    pub inline_evictions: u64,
    /// Entries demoted raw → compressed.
    pub demotions_compressed: u64,
    /// Entries demoted compressed → spilled.
    pub demotions_spilled: u64,
    /// Demoted entries promoted back to raw by hits.
    pub tier_promotions: u64,
    /// End-of-run per-tier byte gauges.
    pub raw_bytes: u64,
    /// Bytes held by in-memory compressed blobs at the end of the run.
    pub compressed_bytes: u64,
    /// Live spilled bytes on disk at the end of the run (off-cap).
    pub spilled_bytes: u64,
    /// Cumulative decompress time paid by hits on compressed entries.
    pub decompress_cost: Duration,
    /// Cumulative read-back + decode time paid by hits on spilled entries.
    pub rehydrate_cost: Duration,
}

/// Outcome of [`tiered_lowmem`]: the same cycling workload and cap,
/// tiering off then on.
#[derive(Debug)]
pub struct TieredLowmemOutcome {
    /// The shared memory cap (bytes) — 1 MiB, as in the other lowmem
    /// scenarios.
    pub cap_bytes: usize,
    /// Distinct parameter sets in the cycling alphabet.
    pub distinct: usize,
    /// Passes over the alphabet.
    pub cycles: usize,
    /// Run with the raw pool (collector on, no tiering).
    pub without_tiering: TieredRun,
    /// Run with compression + spill enabled at the same cap.
    pub with_tiering: TieredRun,
}

impl TieredLowmemOutcome {
    /// The acceptance gate: at the same cap, the ladder must retain at
    /// least the hit ratio the raw pool manages (in practice it retains
    /// strictly more once the alphabet overflows the cap).
    pub fn tiering_retains_hits(&self) -> bool {
        self.with_tiering.hit_ratio >= self.without_tiering.hit_ratio
    }
}

fn drive_tiered(
    catalog: Catalog,
    template: &Program,
    alphabet: &[Vec<Value>],
    cycles: usize,
    config: RecyclerConfig,
    spill: Option<(std::path::PathBuf, usize)>,
) -> TieredRun {
    let tiered = config.compression;
    let mut builder = DatabaseBuilder::new(catalog).recycler(config);
    if let Some((dir, budget)) = spill {
        builder = builder.spill_dir(dir, budget);
    }
    let db = builder.build();
    let t = db.prepare(template.clone());
    let mut session = db.session();
    let high = (db.config().mem_limit.unwrap_or(usize::MAX) as f64 * db.config().high_water_ratio)
        as usize;
    let started = Instant::now();
    for _ in 0..cycles {
        for params in alphabet {
            session.query(&t, params).expect("tiered_lowmem query");
        }
        // Think time between passes: let the collector absorb the burst
        // (demoting or evicting down from the high-water mark) the way a
        // served workload would between request waves. Bounded so a wedged
        // collector cannot hang the bench.
        let settle = Instant::now();
        while db.pool().bytes() > high && settle.elapsed() < Duration::from_millis(500) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let elapsed = started.elapsed();
    let stats = db.stats();
    db.pool()
        .check_invariants()
        .expect("pool exact after tiered run");
    TieredRun {
        tiered,
        queries: alphabet.len() * cycles,
        elapsed,
        hits: stats.hits,
        monitored: stats.monitored,
        hit_ratio: if stats.monitored == 0 {
            0.0
        } else {
            stats.hits as f64 / stats.monitored as f64
        },
        evictions: stats.evictions,
        inline_evictions: stats.inline_evictions,
        demotions_compressed: stats.demotions_compressed,
        demotions_spilled: stats.demotions_spilled,
        tier_promotions: stats.tier_promotions,
        raw_bytes: stats.raw_bytes,
        compressed_bytes: stats.compressed_bytes,
        spilled_bytes: stats.spilled_bytes,
        decompress_cost: stats.decompress_cost,
        rehydrate_cost: stats.rehydrate_cost,
    }
}

/// The `tiered_lowmem` scenario: cycle `distinct` TPC-H Q6 parameter sets
/// `cycles` times through a pool capped at `cap_bytes` (collector on,
/// water marks 0.5/0.75 — the `background_eviction` regime), once with
/// the raw pool and once with compression + an off-cap spill file, and
/// compare what fraction of the revisits still hit.
///
/// The spill directory lives under the OS temp dir and is removed before
/// returning — the spill file itself is deleted by the recycler when the
/// database drops.
pub fn tiered_lowmem(
    sf: f64,
    distinct: usize,
    cycles: usize,
    cap_bytes: usize,
) -> TieredLowmemOutcome {
    assert!(cycles >= 2, "retention needs at least one revisit pass");
    let catalog = tpch::generate(tpch::TpchScale::new(sf));
    let q = tpch::query(6);
    let mut rng = SmallRng::seed_from_u64(42);
    let alphabet: Vec<Vec<Value>> = (0..distinct).map(|_| (q.params)(&mut rng)).collect();
    let base = RecyclerConfig::default()
        .eviction(EvictionPolicy::Lru)
        .mem_limit(cap_bytes)
        .collector(true)
        .water_marks(0.5, 0.75);
    let without = drive_tiered(catalog.clone(), &q.template, &alphabet, cycles, base, None);
    let spill_dir =
        std::env::temp_dir().join(format!("recycler-tiered-lowmem-{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir).expect("create spill dir");
    let with = drive_tiered(
        catalog,
        &q.template,
        &alphabet,
        cycles,
        base.compression(true),
        Some((spill_dir.clone(), 32 << 20)),
    );
    // the DB drop above removed the spill file; drop its directory too so
    // repeated bench runs leave nothing behind in the temp dir
    std::fs::remove_dir_all(&spill_dir).ok();
    TieredLowmemOutcome {
        cap_bytes,
        distinct,
        cycles,
        without_tiering: without,
        with_tiering: with,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiering_retains_hits_at_the_lowmem_cap() {
        // an alphabet that overflows 1 MiB, revisited three times: the raw
        // pool must evict; the ladder must demote instead and serve the
        // revisits at least as well
        let out = tiered_lowmem(0.002, 16, 3, 1 << 20);
        assert_eq!(out.without_tiering.queries, 48);
        assert!(
            out.without_tiering.evictions > 0,
            "cap never bound — the scenario exerts no pressure: {:?}",
            out.without_tiering
        );
        assert!(
            out.with_tiering.demotions_compressed > 0,
            "the ladder never demoted anything: {:?}",
            out.with_tiering
        );
        assert!(
            out.tiering_retains_hits(),
            "tiering lost hits vs the raw pool: raw {:?} vs tiered {:?}",
            out.without_tiering,
            out.with_tiering
        );
        // the spill scratch space must be gone when the scenario returns
        let dir =
            std::env::temp_dir().join(format!("recycler-tiered-lowmem-{}", std::process::id()));
        assert!(!dir.exists(), "spill dir leaked: {}", dir.display());
    }
}
