//! Multi-session workload driver: N OS threads firing query streams at
//! one shared [`Database`] — and, for the `server_mixed` scenario, N TCP
//! clients firing the same streams at a `rcy-server` front-end.
//!
//! This is the serving shape the paper's architecture targets (§8: one
//! recycler inside the server, shared by every SkyServer web session):
//! each stream runs on its own [`Database::session`] — same `Arc`-shared
//! column storage, same optimiser pipeline, one shared recycle pool —
//! concurrently with the others, reusing their intermediates.

use std::thread;
use std::time::{Duration, Instant};

use rbat::{Catalog, LogicalType, TableBuilder, Value};
use recycler::{RecyclerConfig, RecyclerStats};
use recycling::{Database, DatabaseBuilder, Update};
use rmal::{Program, ProgramBuilder, P};

use crate::driver::BenchItem;

/// What one session thread observed.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Session index (0-based thread number).
    pub session: usize,
    /// Queries this session executed.
    pub queries: usize,
    /// Marked instructions this session saw.
    pub monitored: u64,
    /// Exact-match reuses this session got (its own or other sessions'
    /// intermediates).
    pub hits: u64,
    /// Subsumed executions.
    pub subsumed: u64,
    /// Wall time of this session's stream.
    pub elapsed: Duration,
}

/// Outcome of a concurrent run.
#[derive(Debug)]
pub struct ConcurrentOutcome {
    /// Number of session threads.
    pub sessions: usize,
    /// Total queries over all sessions.
    pub queries: usize,
    /// Wall time from first spawn to last join.
    pub elapsed: Duration,
    /// Shared recycler statistics after the run (cross-session hits,
    /// duplicate admissions, evictions, ...).
    pub stats: RecyclerStats,
    /// Per-session observations.
    pub per_session: Vec<SessionOutcome>,
    /// Pool size after the run.
    pub pool_entries: usize,
    /// Pool bytes after the run.
    pub pool_bytes: usize,
}

impl ConcurrentOutcome {
    /// Fraction of monitored instructions answered from the pool, for
    /// *this run only* — computed from the per-session observations, not
    /// from `stats` (which is lifetime state of the shared service and
    /// spans every batch ever run against it).
    pub fn hit_ratio(&self) -> f64 {
        let monitored: u64 = self.per_session.iter().map(|s| s.monitored).sum();
        let hits: u64 = self.per_session.iter().map(|s| s.hits).sum();
        if monitored == 0 {
            0.0
        } else {
            hits as f64 / monitored as f64
        }
    }
}

/// Deal `items` round-robin into `n` session streams.
pub fn partition_streams(items: &[BenchItem], n: usize) -> Vec<Vec<BenchItem>> {
    let mut streams: Vec<Vec<BenchItem>> = vec![Vec::new(); n.max(1)];
    for (i, item) in items.iter().enumerate() {
        streams[i % n.max(1)].push(item.clone());
    }
    streams
}

/// Run one stream per thread against a fresh database built from
/// `config`. The templates are prepared once (with the recycler marking
/// pass) and shared read-only by every session.
pub fn run_concurrent(
    catalog: Catalog,
    templates: &[Program],
    streams: &[Vec<BenchItem>],
    config: RecyclerConfig,
) -> ConcurrentOutcome {
    let db = DatabaseBuilder::new(catalog).recycler(config).build();
    run_concurrent_shared(&db, templates, streams)
}

/// [`run_concurrent`] against a caller-provided database — lets a harness
/// run several batches (or mix drivers) over one pool.
pub fn run_concurrent_shared(
    db: &Database,
    templates: &[Program],
    streams: &[Vec<BenchItem>],
) -> ConcurrentOutcome {
    let optimized: Vec<Program> = templates.iter().map(|t| db.prepare(t.clone())).collect();
    let optimized = &optimized;

    let started = Instant::now();
    let per_session: Vec<SessionOutcome> = thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(idx, stream)| {
                let mut session = db.session();
                scope.spawn(move || {
                    let s0 = Instant::now();
                    let mut out = SessionOutcome {
                        session: idx,
                        queries: stream.len(),
                        monitored: 0,
                        hits: 0,
                        subsumed: 0,
                        elapsed: Duration::ZERO,
                    };
                    for item in stream {
                        let reply = session
                            .query(&optimized[item.query_idx], &item.params)
                            .unwrap_or_else(|e| {
                                panic!("session {idx}: query q{} failed: {e}", item.label)
                            });
                        out.monitored += reply.marked;
                        out.hits += reply.reused;
                        out.subsumed += reply.subsumed;
                    }
                    out.elapsed = s0.elapsed();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let (pool_entries, pool_bytes) = {
        let pool = db.pool();
        (pool.len(), pool.bytes())
    };
    ConcurrentOutcome {
        sessions: streams.len(),
        queries: streams.iter().map(|s| s.len()).sum(),
        elapsed,
        stats: db.stats(),
        per_session,
        pool_entries,
        pool_bytes,
    }
}

/// One measured point of the [`pool_scaling`] sweep.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Concurrent session threads.
    pub sessions: usize,
    /// Total queries executed at this point.
    pub queries: usize,
    /// Wall time from first spawn to last join.
    pub elapsed: Duration,
    /// Queries per wall second (aggregate over all sessions).
    pub queries_per_sec: f64,
    /// Marked (probe+admission) instructions per wall second — the
    /// recycler hot-path throughput the sharded pool is sized by.
    pub ops_per_sec: f64,
    /// Fraction of marked instructions answered from the pool.
    pub hit_ratio: f64,
    /// Cross-session exact-match reuses.
    pub cross_session_hits: u64,
    /// Racing duplicate admissions resolved first-writer-wins.
    pub duplicate_admissions: u64,
}

/// Micro workload for the scaling sweep: a small catalog and cheap
/// bind→select→aggregate templates, so recycler bookkeeping (probe, hit
/// accounting, admission) dominates the per-query cost and the sweep
/// exposes pool-lock contention rather than operator time.
fn scaling_setup() -> (Catalog, Vec<Program>, Vec<BenchItem>) {
    let mut cat = Catalog::new();
    let mut tb = TableBuilder::new("t")
        .column("x", LogicalType::Int)
        .column("y", LogicalType::Int);
    for i in 0..1000i64 {
        tb.push_row(&[Value::Int((i * 37) % 1000), Value::Int(i % 97)]);
    }
    cat.add_table(tb.finish());

    let mut b = ProgramBuilder::new("scale_count", 2);
    let col = b.bind("t", "x");
    let sel = b.select_closed(col, P(0), P(1));
    let n = b.count(sel);
    b.export("n", n);
    let count_t = b.finish();

    let mut b = ProgramBuilder::new("scale_sum", 2);
    let col = b.bind("t", "y");
    let sel = b.select_closed(col, P(0), P(1));
    let s = b.sum(sel);
    b.export("s", s);
    let sum_t = b.finish();

    // a small parameter alphabet: most probes repeat (hits), the rest
    // admit fresh entries — both sides of the hot path are exercised
    let ranges = [
        (0i64, 800i64),
        (100, 700),
        (200, 600),
        (0, 500),
        (300, 900),
        (50, 450),
        (150, 850),
        (250, 750),
    ];
    let items: Vec<BenchItem> = (0..ranges.len() * 2)
        .map(|i| {
            let (lo, hi) = ranges[i % ranges.len()];
            BenchItem {
                query_idx: i % 2,
                label: i as u8,
                params: vec![Value::Int(lo), Value::Int(hi)],
            }
        })
        .collect();
    (cat, vec![count_t, sum_t], items)
}

/// The `pool_scaling` experiment: sweep session counts over the same
/// per-session query volume (weak scaling), each point against a FRESH
/// shared pool, and report aggregate probe+admission throughput plus hit
/// ratio per point. `config` selects the pool layout — pass
/// `RecyclerConfig::default().shards(1)` to reproduce the pre-shard
/// single-lock baseline.
pub fn pool_scaling(
    counts: &[usize],
    queries_per_session: usize,
    config: RecyclerConfig,
) -> Vec<ScalePoint> {
    let (cat, templates, alphabet) = scaling_setup();
    counts
        .iter()
        .map(|&n| {
            let total = n.max(1) * queries_per_session;
            let batch: Vec<BenchItem> = (0..total)
                .map(|i| alphabet[i % alphabet.len()].clone())
                .collect();
            let streams = partition_streams(&batch, n.max(1));
            let outcome = run_concurrent(cat.clone(), &templates, &streams, config);
            let monitored: u64 = outcome.per_session.iter().map(|s| s.monitored).sum();
            let secs = outcome.elapsed.as_secs_f64().max(1e-9);
            ScalePoint {
                sessions: outcome.sessions,
                queries: outcome.queries,
                elapsed: outcome.elapsed,
                queries_per_sec: outcome.queries as f64 / secs,
                ops_per_sec: monitored as f64 / secs,
                hit_ratio: outcome.hit_ratio(),
                cross_session_hits: outcome.stats.cross_session_hits,
                duplicate_admissions: outcome.stats.duplicate_admissions,
            }
        })
        .collect()
}

/// Outcome of the [`update_mixed`] scenario: N reader sessions replaying
/// queries against an untouched table while one writer commits deltas to
/// another — the serving shape scoped invalidation exists for.
#[derive(Debug)]
pub struct UpdateMixedOutcome {
    /// Concurrent reader session threads.
    pub readers: usize,
    /// Total reader queries executed.
    pub reader_queries: usize,
    /// Commits the writer applied during the run.
    pub commits: usize,
    /// Wall time from first spawn to last join.
    pub elapsed: Duration,
    /// Reader queries per wall second, aggregate.
    pub reader_qps: f64,
    /// Fraction of the readers' marked instructions served from the pool
    /// — stays near 1.0 when commits never block or invalidate them.
    pub reader_hit_ratio: f64,
    /// Entries invalidated by the writer's commits.
    pub invalidated: u64,
    /// Entries refreshed by delta propagation.
    pub propagated: u64,
    /// Shards one quiescent instrumented commit write-locked.
    pub commit_locked_shards: usize,
    /// Total shards in the pool.
    pub shards: usize,
}

/// Mixed update/query workload: one writer session commits insert deltas
/// to a `hot` table in a loop (re-admitting its own hot chain between
/// commits) while `readers` sessions replay a warm query alphabet against
/// a `cold` table — one database, one shared pool, one shared catalog
/// cell. With scoped invalidation the readers' shards see no write-lock
/// traffic from the commits; `commit_locked_shards` (measured on a final
/// quiescent commit) records how many shards one commit actually locks,
/// against the pool's total.
pub fn update_mixed(
    readers: usize,
    queries_per_reader: usize,
    commits: usize,
    config: RecyclerConfig,
) -> UpdateMixedOutcome {
    let mut cat = Catalog::new();
    for name in ["hot", "cold"] {
        let mut tb = TableBuilder::new(name)
            .column("x", LogicalType::Int)
            .column("y", LogicalType::Int);
        for i in 0..1200i64 {
            tb.push_row(&[Value::Int((i * 37) % 1200), Value::Int(i % 97)]);
        }
        cat.add_table(tb.finish());
    }
    let db = DatabaseBuilder::new(cat).recycler(config).build();

    let template = |name: &str, table: &str| {
        let mut b = ProgramBuilder::new(name, 2);
        let col = b.bind(table, "x");
        let sel = b.select_closed(col, P(0), P(1));
        let n = b.count(sel);
        b.export("n", n);
        b.finish()
    };
    let cold_t = db.prepare(template("mixed_cold", "cold"));
    let hot_t = db.prepare(template("mixed_hot", "hot"));
    let alphabet: Vec<Vec<Value>> = (0..8i64)
        .map(|i| vec![Value::Int(i * 100), Value::Int(i * 100 + 500)])
        .collect();
    {
        let mut warmer = db.session();
        for p in &alphabet {
            warmer.query(&cold_t, p).unwrap();
            warmer.query(&hot_t, p).unwrap();
        }
    }

    let stats0 = db.stats();
    let started = Instant::now();
    let (db_ref, cold_ref, hot_ref, alphabet_ref) = (&db, &cold_t, &hot_t, &alphabet);
    let (monitored, hits) = thread::scope(|scope| {
        let reader_handles: Vec<_> = (0..readers)
            .map(|r| {
                let mut session = db_ref.session();
                scope.spawn(move || {
                    let (mut monitored, mut hits) = (0u64, 0u64);
                    for i in 0..queries_per_reader {
                        let p = &alphabet_ref[(r + i) % alphabet_ref.len()];
                        let reply = session.query(cold_ref, p).unwrap();
                        monitored += reply.marked;
                        hits += reply.reused;
                    }
                    (monitored, hits)
                })
            })
            .collect();
        let mut writer = db_ref.session();
        let writer_handle = scope.spawn(move || {
            for c in 0..commits {
                writer
                    .commit(Update::to("hot").insert(vec![vec![
                        Value::Int(c as i64 % 1200),
                        Value::Int(c as i64),
                    ]]))
                    .unwrap();
                // re-admit the hot chain so the next commit has a closure
                // to invalidate or propagate into
                writer
                    .query(hot_ref, &alphabet_ref[c % alphabet_ref.len()])
                    .unwrap();
            }
        });
        let mut totals = (0u64, 0u64);
        for h in reader_handles {
            let (m, hit) = h.join().expect("reader thread panicked");
            totals.0 += m;
            totals.1 += hit;
        }
        writer_handle.join().expect("writer thread panicked");
        totals
    });
    let elapsed = started.elapsed();

    // one quiescent instrumented commit: how many shards does it lock?
    let commit_locked_shards = {
        let w0 = db.pool().write_lock_acquisitions_by_shard();
        let mut writer = db.session();
        writer
            .commit(Update::to("hot").insert(vec![vec![Value::Int(7), Value::Int(7)]]))
            .unwrap();
        let w1 = db.pool().write_lock_acquisitions_by_shard();
        w0.iter().zip(&w1).filter(|(b, a)| a > b).count()
    };

    let stats = db.stats();
    let queries = readers * queries_per_reader;
    UpdateMixedOutcome {
        readers,
        reader_queries: queries,
        commits,
        elapsed,
        reader_qps: queries as f64 / elapsed.as_secs_f64().max(1e-9),
        reader_hit_ratio: if monitored == 0 {
            0.0
        } else {
            hits as f64 / monitored as f64
        },
        invalidated: stats.invalidated - stats0.invalidated,
        propagated: stats.propagated - stats0.propagated,
        commit_locked_shards,
        shards: db.pool().shard_count(),
    }
}

/// Outcome of the [`server_mixed`] scenario: N TCP clients replaying the
/// SkyServer mix against a `rcy-server` front-end over one database.
#[derive(Debug)]
pub struct ServerMixedOutcome {
    /// Concurrent TCP clients.
    pub clients: usize,
    /// Total queries executed over the wire.
    pub queries: usize,
    /// Wall time from first connect to last close.
    pub elapsed: Duration,
    /// Queries per wall second, aggregate over all clients.
    pub queries_per_sec: f64,
    /// Fraction of the clients' marked instructions answered from the
    /// pool (reported per query over the wire).
    pub hit_ratio: f64,
    /// Cross-session exact-match reuses (server stats).
    pub cross_session_hits: u64,
    /// Sessions the server opened (one per served connection).
    pub server_sessions: u64,
    /// Connections rejected by admission control.
    pub rejected_connections: u64,
}

/// The `server_mixed` scenario: build a SkyServer database, register the
/// log's templates by name, start a TCP front-end, and replay the log mix
/// from `clients` concurrent TCP clients (round-robin partition). The
/// whole query path — framing, session mapping, recycling, reply — runs
/// over the wire.
pub fn server_mixed(
    clients: usize,
    queries: usize,
    objects: usize,
    seed: u64,
) -> ServerMixedOutcome {
    let cat = skyserver::generate(skyserver::SkyScale::new(objects));
    let (templates, log) = skyserver::sample_log(queries, seed);
    let items: Vec<BenchItem> = log
        .into_iter()
        .map(|l| BenchItem {
            query_idx: l.query_idx,
            label: l.query_idx as u8,
            params: l.params,
        })
        .collect();

    let mut builder = DatabaseBuilder::new(cat);
    for (i, t) in templates.iter().enumerate() {
        builder = builder.template(&format!("q{i}"), t.clone());
    }
    let db = builder.build();
    let server = rcy_server::Server::start(
        db,
        "127.0.0.1:0",
        rcy_server::ServerConfig {
            max_sessions: clients.max(1),
            backlog: clients.max(1),
            ..Default::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr();

    let streams = partition_streams(&items, clients.max(1));
    let started = Instant::now();
    let (monitored, hits): (u64, u64) = thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                scope.spawn(move || {
                    let mut client = rcy_server::Client::connect(addr).expect("connect");
                    let (mut monitored, mut hits) = (0u64, 0u64);
                    for item in stream {
                        let reply = client
                            .query(&format!("q{}", item.query_idx), &item.params)
                            .expect("wire query");
                        monitored += reply.marked;
                        hits += reply.reused;
                    }
                    client.close().expect("close");
                    (monitored, hits)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .fold((0, 0), |acc, (m, h)| (acc.0 + m, acc.1 + h))
    });
    let elapsed = started.elapsed();
    let rejected = server.rejected_connections();
    // read the server-side stats over the wire before shutting down
    let stats = {
        let mut c = rcy_server::Client::connect(addr).expect("connect for stats");
        let pairs = c.stats().expect("stats");
        c.close().ok();
        pairs
    };
    server.shutdown();
    let stat = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };

    let total = streams.iter().map(|s| s.len()).sum::<usize>();
    ServerMixedOutcome {
        clients: streams.len(),
        queries: total,
        elapsed,
        queries_per_sec: total as f64 / elapsed.as_secs_f64().max(1e-9),
        hit_ratio: if monitored == 0 {
            0.0
        } else {
            hits as f64 / monitored as f64
        },
        cross_session_hits: stat("cross_session_hits"),
        server_sessions: stat("sessions"),
        rejected_connections: rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbat::Value;
    use recycler::UpdateMode;

    fn sky_setup(objects: usize, n: usize, seed: u64) -> (Catalog, Vec<Program>, Vec<BenchItem>) {
        let cat = skyserver::generate(skyserver::SkyScale::new(objects));
        let (templates, log) = skyserver::sample_log(n, seed);
        let items: Vec<BenchItem> = log
            .into_iter()
            .map(|l| BenchItem {
                query_idx: l.query_idx,
                label: l.query_idx as u8,
                params: l.params,
            })
            .collect();
        (cat, templates, items)
    }

    #[test]
    fn four_sessions_share_the_pool() {
        let (cat, templates, items) = sky_setup(3000, 48, 5);
        let streams = partition_streams(&items, 4);
        let outcome = run_concurrent(cat, &templates, &streams, RecyclerConfig::default());
        assert_eq!(outcome.sessions, 4);
        assert_eq!(outcome.queries, 48);
        assert!(
            outcome.stats.cross_session_hits > 0,
            "overlapping streams must reuse across sessions: {:?}",
            outcome.stats
        );
        assert!(outcome.hit_ratio() > 0.2, "ratio {}", outcome.hit_ratio());
    }

    #[test]
    fn single_stream_degenerates_to_sequential() {
        let (cat, templates, items) = sky_setup(2000, 10, 9);
        let streams = partition_streams(&items, 1);
        let outcome = run_concurrent(cat, &templates, &streams, RecyclerConfig::default());
        assert_eq!(outcome.sessions, 1);
        assert_eq!(outcome.stats.cross_session_hits, 0);
        assert!(outcome.stats.hits > 0);
    }

    #[test]
    fn pool_scaling_sweeps_and_hits() {
        let points = pool_scaling(&[1, 2, 4], 16, RecyclerConfig::default());
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].sessions, 1);
        assert_eq!(points[2].sessions, 4);
        for p in &points {
            assert_eq!(p.queries, p.sessions * 16);
            assert!(p.ops_per_sec > 0.0);
            assert!(p.hit_ratio > 0.3, "repetitive alphabet must hit: {p:?}");
        }
        assert!(points[2].cross_session_hits > 0);
    }

    #[test]
    fn update_mixed_keeps_readers_hitting_and_scopes_commits() {
        let out = update_mixed(
            4,
            10,
            3,
            RecyclerConfig::default()
                .shards(16)
                .update_mode(UpdateMode::Invalidate),
        );
        assert_eq!(out.readers, 4);
        assert_eq!(out.reader_queries, 40);
        assert_eq!(out.commits, 3);
        assert!(
            out.reader_hit_ratio > 0.9,
            "warm cold readers must stay pure-hit through commits: {out:?}"
        );
        assert!(out.invalidated > 0, "commits must invalidate hot: {out:?}");
        assert!(
            out.commit_locked_shards < out.shards,
            "a scoped commit must not lock every shard: {out:?}"
        );
    }

    #[test]
    fn update_mixed_propagates_when_configured() {
        let out = update_mixed(
            2,
            6,
            2,
            RecyclerConfig::default()
                .shards(16)
                .update_mode(UpdateMode::Propagate),
        );
        assert!(
            out.propagated > 0,
            "insert-only commits must refresh the hot chain: {out:?}"
        );
        assert!(out.commit_locked_shards < out.shards, "{out:?}");
    }

    #[test]
    fn server_mixed_serves_the_log_over_tcp() {
        let out = server_mixed(4, 32, 2500, 7);
        assert_eq!(out.clients, 4);
        assert_eq!(out.queries, 32);
        assert!(
            out.hit_ratio > 0.2,
            "template-heavy log must recycle over the wire: {out:?}"
        );
        assert!(
            out.server_sessions >= 4,
            "one session per served connection: {out:?}"
        );
        assert_eq!(out.rejected_connections, 0, "{out:?}");
    }

    #[test]
    fn partitioning_is_balanced() {
        let items: Vec<BenchItem> = (0..10)
            .map(|i| BenchItem {
                query_idx: 0,
                label: i as u8,
                params: vec![Value::Int(i)],
            })
            .collect();
        let streams = partition_streams(&items, 4);
        let sizes: Vec<usize> = streams.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }
}
