//! The `server_c10k` scenario: thousands of mostly-idle connections plus
//! a handful of hot ones against the epoll reactor front-end.
//!
//! Two claims are measured, the ones the reactor rewrite was for:
//!
//! 1. **flat memory per idle connection** — an idle connection costs a
//!    token, an empty decoder and an empty write buffer, not a thread
//!    stack. RSS is sampled from `/proc/self/statm` before and after the
//!    idle swarm connects (server and swarm share this process, so the
//!    delta is an upper bound on the server's own cost);
//! 2. **no throughput loss** — the hot clients' blocking query rate
//!    through the reactor must match a classic thread-per-connection
//!    server speaking the same protocol (built here from the blocking
//!    `read_frame`/`write_frame` halves the reactor retired), and the
//!    pipelined path must beat one-at-a-time round trips.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rbat::{Catalog, LogicalType, TableBuilder, Value};
use rcy_server::protocol::{
    decode_request, decode_response, displayable, encode_request, encode_response, read_frame,
    write_frame, QueryResult, Request, Response,
};
use rcy_server::{Client, Server, ServerConfig};
use recycling::{Database, DatabaseBuilder};
use rmal::{ProgramBuilder, P};

/// What one `server_c10k` run measured.
#[derive(Debug, Clone)]
pub struct C10kOutcome {
    /// Idle connections held open through the hot phase.
    pub idle_connections: usize,
    /// Concurrent hot clients.
    pub hot_clients: usize,
    /// Total queries the hot clients pushed through the reactor.
    pub hot_queries: usize,
    /// Process RSS before the idle swarm connected (bytes).
    pub rss_before_idle: u64,
    /// Process RSS with the whole idle swarm connected (bytes).
    pub rss_with_idle: u64,
    /// RSS delta per idle connection (bytes; client + server side, both
    /// in this process).
    pub per_idle_conn_bytes: f64,
    /// Blocking-client throughput through the reactor, queries/sec.
    pub reactor_qps: f64,
    /// The same hot workload against a thread-per-connection server.
    pub baseline_qps: f64,
    /// One blocking connection, strictly call-and-wait, queries/sec —
    /// the fair comparator for the pipelined number (same single
    /// session, so round trips are the only difference).
    pub sequential_qps: f64,
    /// One pipelined connection replaying the same queries in batches.
    pub pipelined_qps: f64,
    /// Live connections the server reported at the height of the swarm.
    pub live_connections: u64,
    /// The fd soft limit after raising it (the swarm needs headroom).
    pub nofile_limit: u64,
}

impl C10kOutcome {
    /// Flat-memory verdict: an idle connection must cost less than
    /// `bound` bytes of RSS (both endpoints counted).
    pub fn idle_memory_is_flat(&self, bound: f64) -> bool {
        self.per_idle_conn_bytes <= bound
    }
    /// Throughput verdict with a noise `tolerance` (e.g. `0.85` = the
    /// reactor may be up to 15% slower before the claim fails).
    pub fn throughput_holds(&self, tolerance: f64) -> bool {
        self.reactor_qps >= self.baseline_qps * tolerance
    }
}

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    let mut tb = TableBuilder::new("t")
        .column("x", LogicalType::Int)
        .column("y", LogicalType::Int);
    for i in 0..4000i64 {
        tb.push_row(&[Value::Int((i * 37) % 4000), Value::Int(i % 97)]);
    }
    cat.add_table(tb.finish());
    cat
}

fn bench_db() -> Database {
    let mut b = ProgramBuilder::new("count_range", 2);
    let col = b.bind("t", "x");
    let sel = b.select_closed(col, P(0), P(1));
    let n = b.count(sel);
    b.export("n", n);
    DatabaseBuilder::new(catalog())
        .template("count_range", b.finish())
        .build()
}

/// Resident set size in bytes from `/proc/self/statm` (0 where absent —
/// the scenario then reports zeros rather than failing).
fn rss_bytes() -> u64 {
    const PAGE: u64 = 4096; // the offline build has no sysconf; Linux default
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| {
            s.split_whitespace()
                .nth(1)
                .and_then(|v| v.parse::<u64>().ok())
        })
        .unwrap_or(0)
        * PAGE
}

/// The retired architecture, rebuilt as a bench baseline: one blocking
/// OS thread per accepted connection, `read_frame` → execute →
/// `write_frame`, one session per connection. This is exactly what the
/// reactor replaced, so its hot-path throughput is the bar the reactor
/// must clear.
fn thread_per_conn_server(db: Database) -> (SocketAddr, Arc<AtomicBool>, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind baseline");
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let accept = thread::spawn(move || {
        listener.set_nonblocking(true).unwrap();
        let mut handles = Vec::new();
        while !stop2.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).ok();
                    stream.set_nodelay(true).ok();
                    let db = db.clone();
                    handles.push(thread::spawn(move || serve_blocking(&db, stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(1));
                }
                Err(_) => break,
            }
        }
        for h in handles {
            h.join().ok();
        }
    });
    (addr, stop, accept)
}

fn serve_blocking(db: &Database, mut stream: TcpStream) {
    let mut session = None;
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            _ => return,
        };
        let resp = match decode_request(&payload) {
            Ok(Request::Hello { version }) => Response::Hello { version },
            Ok(Request::Query {
                id,
                template,
                params,
                ..
            }) => {
                let s = session.get_or_insert_with(|| db.session());
                match s.query_named(&template, &params) {
                    Ok(reply) => Response::Query {
                        id,
                        result: QueryResult {
                            exports: reply
                                .exports
                                .iter()
                                .map(|(n, v)| (n.clone(), displayable(v)))
                                .collect(),
                            marked: reply.marked,
                            reused: reply.reused,
                            subsumed: reply.subsumed,
                            admitted: reply.admitted,
                            elapsed_us: reply.elapsed.as_micros() as u64,
                        },
                    },
                    Err(e) => Response::Error {
                        id,
                        message: e.to_string(),
                    },
                }
            }
            Ok(Request::Close) => {
                let bytes = encode_response(&Response::Closed).unwrap();
                write_frame(&mut stream, &bytes).ok();
                return;
            }
            _ => return,
        };
        let bytes = encode_response(&resp).unwrap();
        if write_frame(&mut stream, &bytes).is_err() {
            return;
        }
    }
}

/// Replay `per_client` blocking queries from `clients` threads against
/// whatever v2 server answers at `addr`; returns aggregate queries/sec.
fn hot_phase(addr: SocketAddr, clients: usize, per_client: usize) -> f64 {
    let started = Instant::now();
    thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("hot connect");
                for i in 0..per_client {
                    let lo = (((c * 7919 + i * 13) % 3800) as i64).max(0);
                    client
                        .query("count_range", &[Value::Int(lo), Value::Int(lo + 120)])
                        .expect("hot query");
                }
                client.close().ok();
            });
        }
    });
    (clients * per_client) as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

/// The scenario. `idle` mostly-idle connections are opened (handshake
/// only, then silence), then `hot` clients push `per_client` queries
/// each through the reactor, then one connection replays the same count
/// pipelined. The thread-per-connection baseline serves only the hot
/// phase — giving it the idle swarm would need `idle` OS threads, which
/// is the disease, not the control group.
pub fn server_c10k(idle: usize, hot: usize, per_client: usize) -> C10kOutcome {
    let nofile_limit = rcy_server::raise_nofile_limit().unwrap_or(0);

    // --- baseline first (fresh db, fresh process state) ---
    let (base_addr, base_stop, base_join) = thread_per_conn_server(bench_db());
    let baseline_qps = hot_phase(base_addr, hot, per_client);
    base_stop.store(true, Ordering::Relaxed);
    // poke the accept loop awake if it is parked in the poll sleep
    let _ = TcpStream::connect(base_addr);
    base_join.join().ok();

    // --- the reactor, with the idle swarm on top ---
    let server = Server::start(
        bench_db(),
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: hot.max(1),
            backlog: hot.max(1),
            max_connections: Some(idle + hot + 8),
            ..Default::default()
        },
    )
    .expect("start reactor");
    let addr = server.local_addr();

    let rss_before_idle = rss_bytes();
    // raw sockets, not full `Client`s: an idle peer here is one fd plus
    // nothing, so the RSS delta is dominated by the *server's* per-idle
    // cost — the quantity under test
    let hello = encode_request(&Request::Hello {
        version: rcy_server::PROTOCOL_VERSION,
    })
    .unwrap();
    let mut swarm: Vec<TcpStream> = Vec::with_capacity(idle);
    for _ in 0..idle {
        // a handshaken, then silent, connection — the keep-alive shape
        let mut raw = TcpStream::connect(addr).expect("idle connect");
        write_frame(&mut raw, &hello).expect("idle hello");
        let ack = read_frame(&mut raw)
            .expect("idle handshake read")
            .expect("idle handshake ack");
        assert!(matches!(
            decode_response(&ack).expect("idle ack decode"),
            Response::Hello { .. }
        ));
        swarm.push(raw);
    }
    let rss_with_idle = rss_bytes();
    let live_connections = server.live_connections() as u64;

    let reactor_qps = hot_phase(addr, hot, per_client);

    // one connection, call-and-wait: the pipelining comparator
    let sequential_qps = hot_phase(addr, 1, hot * per_client);

    // --- pipelined: one connection, the whole hot-client volume ---
    let pipelined_qps = {
        let mut client = Client::connect(addr).expect("pipelined connect");
        let total = hot * per_client;
        let started = Instant::now();
        let mut done = 0usize;
        while done < total {
            let batch = 64.min(total - done);
            let params: Vec<Vec<Value>> = (0..batch)
                .map(|i| {
                    let lo = ((((done + i) * 13) % 3800) as i64).max(0);
                    vec![Value::Int(lo), Value::Int(lo + 120)]
                })
                .collect();
            let reqs: Vec<(&str, &[Value])> = params
                .iter()
                .map(|p| ("count_range", p.as_slice()))
                .collect();
            client.query_many(&reqs).expect("pipelined batch");
            done += batch;
        }
        let qps = total as f64 / started.elapsed().as_secs_f64().max(1e-9);
        client.close().ok();
        qps
    };

    drop(swarm);
    server.shutdown();

    let per_idle_conn_bytes = if idle > 0 {
        rss_with_idle.saturating_sub(rss_before_idle) as f64 / idle as f64
    } else {
        0.0
    };
    C10kOutcome {
        idle_connections: idle,
        hot_clients: hot,
        hot_queries: hot * per_client,
        rss_before_idle,
        rss_with_idle,
        per_idle_conn_bytes,
        reactor_qps,
        baseline_qps,
        sequential_qps,
        pipelined_qps,
        live_connections,
        nofile_limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c10k_smoke_idle_swarm_is_cheap_and_throughput_holds() {
        // small but real: enough idle connections to dwarf any fixed
        // cost, few enough to stay fast in CI's unit-test leg
        let out = server_c10k(256, 2, 40);
        assert_eq!(out.idle_connections, 256);
        assert!(
            out.live_connections >= 256,
            "swarm not actually connected: {out:?}"
        );
        assert!(out.reactor_qps > 0.0 && out.baseline_qps > 0.0);
        // both endpoints of an idle connection live in this process;
        // 64 KiB covers them with margin while still catching a
        // thread-stack (512 KiB+) or per-conn-scratch regression cold
        assert!(
            out.idle_memory_is_flat(64.0 * 1024.0),
            "idle connections are not flat: {:.0} bytes each ({out:?})",
            out.per_idle_conn_bytes
        );
    }

    #[test]
    fn baseline_server_speaks_v2() {
        let (addr, stop, join) = thread_per_conn_server(bench_db());
        let mut c = Client::connect(addr).expect("handshake with baseline");
        let reply = c
            .query("count_range", &[Value::Int(0), Value::Int(50)])
            .unwrap();
        assert_eq!(reply.exports[0].1, Value::Int(51));
        c.close().unwrap();
        stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(addr);
        join.join().unwrap();
    }
}
