//! Batch driver: run query sequences through the `recycling` facade
//! (naive or recycler-backed databases) and collect per-query
//! observations.

use std::time::{Duration, Instant};

use rbat::{Catalog, Value};
use recycler::RecyclerConfig;
use recycling::{Database, DatabaseBuilder, Session};
use rmal::Program;

/// One query invocation to drive: template index + parameters.
#[derive(Debug, Clone)]
pub struct BenchItem {
    /// Index into the template list.
    pub query_idx: usize,
    /// Reporting label (e.g. TPC-H query number).
    pub label: u8,
    /// Parameters.
    pub params: Vec<Value>,
}

/// Observations for one executed query.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Reporting label.
    pub label: u8,
    /// Wall time of the invocation.
    pub elapsed: Duration,
    /// Marked instructions (0 for naive runs).
    pub monitored: u64,
    /// Exact-match pool hits.
    pub hits: u64,
    /// Local hits (intra-invocation).
    pub local_hits: u64,
    /// Global hits.
    pub global_hits: u64,
    /// Subsumed executions.
    pub subsumed: u64,
    /// Estimated time saved by reuse.
    pub saved: Duration,
    /// Pool bytes after the query.
    pub pool_bytes: usize,
    /// Pool entries after the query.
    pub pool_entries: usize,
    /// Pool bytes in reused entries after the query.
    pub reused_bytes: usize,
    /// Pool entries reused at least once after the query.
    pub reused_entries: usize,
    /// Exported results (for cross-engine equality checks).
    pub exports: Vec<(String, Value)>,
}

/// Outcome of a batch run.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-query observations in execution order.
    pub runs: Vec<QueryRun>,
    /// Total wall time over all queries.
    pub total: Duration,
}

impl BatchOutcome {
    /// Sum of hits over the batch.
    pub fn hits(&self) -> u64 {
        self.runs.iter().map(|r| r.hits).sum()
    }

    /// Sum of potential hits (monitored instructions).
    pub fn monitored(&self) -> u64 {
        self.runs.iter().map(|r| r.monitored).sum()
    }

    /// Cumulative hit-ratio series against potential hits — the y-axis of
    /// the paper's Figures 10 and 11.
    pub fn cumulative_hit_ratio(&self) -> Vec<f64> {
        let mut hits = 0u64;
        let mut pot = 0u64;
        self.runs
            .iter()
            .map(|r| {
                hits += r.hits;
                pot += r.monitored;
                if pot == 0 {
                    0.0
                } else {
                    hits as f64 / pot as f64
                }
            })
            .collect()
    }
}

/// Build a naive (recycling-off) database over `catalog` with the
/// templates prepared — the baseline side of every comparison.
pub fn naive_database(catalog: Catalog, templates: &[Program]) -> (Database, Vec<Program>) {
    let db = DatabaseBuilder::new(catalog).naive().build();
    let prepared = templates.iter().map(|t| db.prepare(t.clone())).collect();
    (db, prepared)
}

/// Build a recycler-backed database over `catalog` with the templates
/// prepared (marking pass included).
pub fn recycled_database(
    catalog: Catalog,
    templates: &[Program],
    config: RecyclerConfig,
) -> (Database, Vec<Program>) {
    let db = DatabaseBuilder::new(catalog).recycler(config).build();
    let prepared = templates.iter().map(|t| db.prepare(t.clone())).collect();
    (db, prepared)
}

/// Run a batch on a naive database (no recycling).
pub fn run_naive(catalog: Catalog, templates: &[Program], items: &[BenchItem]) -> BatchOutcome {
    let (db, templates) = naive_database(catalog, templates);
    let mut session = db.session();
    run_items(&db, &mut session, &templates, items)
}

/// Run a batch on a recycler database; `warmup` executes one instance per
/// template first and then empties the pool (the paper's preparation step
/// that factors out IO and fills the query cache). Returns the database
/// for post-hoc inspection (`stats`, `pool`, `snapshot`).
pub fn run_recycled(
    catalog: Catalog,
    templates: &[Program],
    items: &[BenchItem],
    config: RecyclerConfig,
    warmup: bool,
) -> (BatchOutcome, Database) {
    let (db, templates) = recycled_database(catalog, templates, config);
    let mut session = db.session();
    let mut warmup_count = 0usize;
    if warmup {
        for (idx, t) in templates.iter().enumerate() {
            if let Some(item) = items.iter().find(|i| i.query_idx == idx) {
                let _ = session.query(t, &item.params);
                warmup_count += 1;
            }
        }
        db.maintenance().clear_pool();
    }
    let mut outcome = run_items(&db, &mut session, &templates, items);
    enrich_from_log(&mut outcome, &session, warmup_count);
    (outcome, db)
}

fn run_items(
    db: &Database,
    session: &mut Session,
    templates: &[Program],
    items: &[BenchItem],
) -> BatchOutcome {
    let mut runs = Vec::with_capacity(items.len());
    let started = Instant::now();
    for item in items {
        let t = &templates[item.query_idx];
        let reply = session
            .query(t, &item.params)
            .unwrap_or_else(|e| panic!("query {} failed: {e}", t.name));
        let snap = db.snapshot();
        // saved / local / global are refined from the session query log by
        // `enrich_from_log`; naive runs keep zeros.
        runs.push(QueryRun {
            label: item.label,
            elapsed: reply.elapsed,
            monitored: reply.marked,
            hits: reply.reused,
            local_hits: 0,
            global_hits: 0,
            subsumed: reply.subsumed,
            saved: Duration::ZERO,
            pool_bytes: snap.bytes,
            pool_entries: snap.entries,
            reused_bytes: snap.reused_bytes,
            reused_entries: snap.reused_entries,
            exports: reply.exports,
        });
    }
    BatchOutcome {
        runs,
        total: started.elapsed(),
    }
}

/// Convenience wrapper dispatching on an optional recycler config.
pub fn run_batch(
    catalog: Catalog,
    templates: &[Program],
    items: &[BenchItem],
    config: Option<RecyclerConfig>,
    warmup: bool,
) -> BatchOutcome {
    match config {
        None => {
            let _ = warmup;
            run_naive(catalog, templates, items)
        }
        Some(c) => run_recycled(catalog, templates, items, c, warmup).0,
    }
}

/// Fill the local/global hit split and saved time from the session's
/// query log (aligned by execution order; warmup runs are skipped).
pub fn enrich_from_log(outcome: &mut BatchOutcome, session: &Session, warmup_count: usize) {
    let log = session.query_log();
    let offset = warmup_count;
    for (i, run) in outcome.runs.iter_mut().enumerate() {
        if let Some(rec) = log.get(offset + i) {
            run.local_hits = rec.local_hits;
            run.global_hits = rec.global_hits;
            run.saved = rec.saved;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_batch() -> (Catalog, Vec<Program>, Vec<BenchItem>) {
        let cat = tpch::generate(tpch::TpchScale::new(0.001));
        let q = tpch::query(6);
        let mut rng = SmallRng::seed_from_u64(11);
        let params = (q.params)(&mut rng);
        let items = vec![
            BenchItem {
                query_idx: 0,
                label: 6,
                params: params.clone(),
            },
            BenchItem {
                query_idx: 0,
                label: 6,
                params,
            },
        ];
        (cat, vec![q.template], items)
    }

    #[test]
    fn naive_and_recycled_agree() {
        let (cat, templates, items) = tiny_batch();
        let naive = run_naive(cat.clone(), &templates, &items);
        let (rec, db) = run_recycled(cat, &templates, &items, RecyclerConfig::default(), false);
        assert_eq!(naive.runs[0].exports, rec.runs[0].exports);
        assert_eq!(naive.runs[1].exports, rec.runs[1].exports);
        assert!(rec.runs[1].hits > 0, "second identical instance must hit");
        assert!(db.stats().hits > 0);
    }

    #[test]
    fn warmup_clears_pool_but_keeps_working() {
        let (cat, templates, items) = tiny_batch();
        let (rec, _) = run_recycled(cat, &templates, &items, RecyclerConfig::default(), true);
        // identical params as warmup instance → but pool was cleared, so
        // the first batch query recomputes
        assert_eq!(rec.runs[0].hits, 0);
        assert!(rec.runs[1].hits > 0);
    }

    #[test]
    fn cumulative_ratio_monotone_parts() {
        let (cat, templates, items) = tiny_batch();
        let (rec, _) = run_recycled(cat, &templates, &items, RecyclerConfig::default(), false);
        let series = rec.cumulative_hit_ratio();
        assert_eq!(series.len(), 2);
        assert!(series[1] > series[0]);
    }
}
