//! One experiment per table/figure of the paper's evaluation.
//!
//! Each function regenerates the corresponding artefact: same rows, same
//! series, scaled to the configured database size. Absolute numbers differ
//! from the paper (different machine, different scale); the *shapes* —
//! who wins, by what factor, where the crossovers sit — are the
//! reproduction target (see EXPERIMENTS.md).

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rbat::Catalog;
use recycler::{AdmissionPolicy, EvictionPolicy, RecyclerConfig};
use recycling::{DatabaseBuilder, Update};
use rmal::Program;

use crate::driver::{run_naive, run_recycled, BenchItem};
use crate::tables::{fmt_bytes, fmt_dur, fmt_ratio, TextTable};

/// Experiment environment: database scales and seeds, overridable through
/// `REPRO_SF`, `REPRO_SKY`, `REPRO_SEED`.
#[derive(Debug, Clone, Copy)]
pub struct ExpEnv {
    /// TPC-H scale factor.
    pub sf: f64,
    /// SkyServer object count.
    pub sky_objects: usize,
    /// Workload seed.
    pub seed: u64,
}

impl ExpEnv {
    /// Read overrides from the environment.
    pub fn from_env() -> ExpEnv {
        let get = |k: &str| std::env::var(k).ok();
        ExpEnv {
            sf: get("REPRO_SF").and_then(|v| v.parse().ok()).unwrap_or(0.01),
            sky_objects: get("REPRO_SKY")
                .and_then(|v| v.parse().ok())
                .unwrap_or(40_000),
            seed: get("REPRO_SEED").and_then(|v| v.parse().ok()).unwrap_or(42),
        }
    }

    /// Generate the TPC-H catalog at this scale.
    pub fn tpch(&self) -> Catalog {
        tpch::generate(tpch::TpchScale::new(self.sf))
    }

    /// Generate the sky catalog at this scale.
    pub fn sky(&self) -> Catalog {
        skyserver::generate(skyserver::SkyScale::new(self.sky_objects))
    }
}

fn to_bench_items(items: &[tpch::BatchItem]) -> Vec<BenchItem> {
    items
        .iter()
        .map(|i| BenchItem {
            query_idx: i.query_idx,
            label: i.query_no,
            params: i.params.clone(),
        })
        .collect()
}

fn tpch_templates(qs: &[tpch::TpchQuery]) -> Vec<Program> {
    qs.iter().map(|q| q.template.clone()).collect()
}

fn count_marked_binds(engine_cat: &Catalog, template: &Program) -> (usize, usize) {
    // prepare a copy with the full pipeline incl. marking to count marked
    // instructions and marked binds
    let db = DatabaseBuilder::new(engine_cat.clone()).build();
    let t = db.prepare(template.clone());
    let marked = t.marked_count();
    let binds = t
        .instrs
        .iter()
        .filter(|i| i.recycle && matches!(i.op, rmal::Opcode::Bind | rmal::Opcode::BindIdx))
        .count();
    (marked, binds)
}

/// Table II: characteristics of the TPC-H queries — marked instructions
/// (binds excluded), intra- and inter-query reuse percentages, total time
/// and realised savings.
pub fn table2(env: &ExpEnv) -> String {
    let cat = env.tpch();
    let mut out = TextTable::new(&[
        "Query", "#", "Intra %", "Inter %", "Total", "Pot.", "Local", "Glob.",
    ]);
    for qno in 1..=22u8 {
        let (qs, items) = tpch::query_batch(qno, 2, env.seed + qno as u64);
        let templates = tpch_templates(&qs);
        let bitems = to_bench_items(&items);
        let (marked, binds) = count_marked_binds(&cat, &templates[0]);
        let useful = marked.saturating_sub(binds).max(1);

        let naive = run_naive(cat.clone(), &templates, &bitems[..1]);
        let (rec, _engine) = run_recycled(
            cat.clone(),
            &templates,
            &bitems,
            RecyclerConfig::default(),
            false,
        );
        let a = &rec.runs[0];
        let b = &rec.runs[1];
        let intra = 100.0 * a.local_hits as f64 / useful as f64;
        let inter = 100.0 * (b.global_hits.saturating_sub(binds as u64)) as f64 / useful as f64;
        // potential: time in monitored instructions of the first instance
        let pot = a.elapsed; // full first execution ≈ monitored dominate
        out.row(vec![
            format!("Q{qno}"),
            useful.to_string(),
            format!("{intra:.1}"),
            format!("{inter:.1}"),
            fmt_dur(naive.runs[0].elapsed),
            fmt_dur(pot),
            fmt_dur(a.saved),
            fmt_dur(b.saved),
        ]);
    }
    format!("Table II — TPC-H query characteristics\n{}", out.render())
}

/// The per-instance profile of Figures 4 and 5: hit ratio, naive vs
/// recycler time, total vs reused pool memory, for one query over
/// `instances` instances.
pub fn profile_query(env: &ExpEnv, qno: u8, instances: usize) -> String {
    let cat = env.tpch();
    let (qs, items) = tpch::query_batch(qno, instances, env.seed);
    let templates = tpch_templates(&qs);
    let bitems = to_bench_items(&items);
    let naive = run_naive(cat.clone(), &templates, &bitems);
    let (rec, _) = run_recycled(cat, &templates, &bitems, RecyclerConfig::default(), false);
    let mut out = TextTable::new(&[
        "inst",
        "hit-ratio",
        "naive",
        "recycler",
        "RP-mem",
        "RP-reused",
    ]);
    for i in 0..instances {
        let r = &rec.runs[i];
        let ratio = if r.monitored == 0 {
            0.0
        } else {
            r.hits as f64 / r.monitored as f64
        };
        out.row(vec![
            (i + 1).to_string(),
            format!("{ratio:.2}"),
            fmt_dur(naive.runs[i].elapsed),
            fmt_dur(r.elapsed),
            fmt_bytes(r.pool_bytes),
            fmt_bytes(r.reused_bytes),
        ]);
    }
    format!(
        "Q{qno} profile over {instances} instances\n{}",
        out.render()
    )
}

/// Figure 4: intra-query (Q11) and inter-query (Q18) commonality profiles.
pub fn fig4(env: &ExpEnv) -> String {
    format!(
        "Figure 4a — {}\nFigure 4b — {}",
        profile_query(env, 11, 10),
        profile_query(env, 18, 10)
    )
}

/// Figure 5: mixed commonality (Q19) and the limited-overlap counter
/// example (Q14).
pub fn fig5(env: &ExpEnv) -> String {
    format!(
        "Figure 5a — {}\nFigure 5b — {}",
        profile_query(env, 19, 10),
        profile_query(env, 14, 10)
    )
}

/// Figure 6: average per-instance time — naive, recycler-first,
/// recycler-average — for Q11, Q18, Q19, Q14.
pub fn fig6(env: &ExpEnv) -> String {
    let cat = env.tpch();
    let mut out = TextTable::new(&["Query", "Naive", "Recycle first", "Recycle avg"]);
    for qno in [11u8, 18, 19, 14] {
        let (qs, items) = tpch::query_batch(qno, 10, env.seed);
        let templates = tpch_templates(&qs);
        let bitems = to_bench_items(&items);
        let naive = run_naive(cat.clone(), &templates, &bitems);
        let (rec, _) = run_recycled(
            cat.clone(),
            &templates,
            &bitems,
            RecyclerConfig::default(),
            false,
        );
        let navg = naive.total / 10;
        let first = rec.runs[0].elapsed;
        let rest: Duration = rec.runs[1..].iter().map(|r| r.elapsed).sum();
        out.row(vec![
            format!("Q{qno}"),
            fmt_dur(navg),
            fmt_dur(first),
            fmt_dur(rest / 9),
        ]);
    }
    format!(
        "Figure 6 — recycler effect on performance\n{}",
        out.render()
    )
}

/// Figure 7: the CREDIT admission policy vs the number of credits —
/// hit ratio relative to KEEPALL, reused-memory % and reused-entries %.
pub fn fig7(env: &ExpEnv) -> String {
    let cat = env.tpch();
    let mut out = TextTable::new(&[
        "Query",
        "credits",
        "hit/keepall",
        "reused-mem %",
        "reused-RP %",
    ]);
    for qno in [11u8, 18, 19] {
        let (qs, items) = tpch::query_batch(qno, 10, env.seed);
        let templates = tpch_templates(&qs);
        let bitems = to_bench_items(&items);
        let (keepall, _) = run_recycled(
            cat.clone(),
            &templates,
            &bitems,
            RecyclerConfig::default(),
            false,
        );
        let base_hits = keepall.hits().max(1);
        for k in [2u32, 4, 6, 8, 10] {
            let cfg = RecyclerConfig::default().admission(AdmissionPolicy::Credit(k));
            let (run, engine) = run_recycled(cat.clone(), &templates, &bitems, cfg, false);
            let snap = engine.snapshot();
            out.row(vec![
                format!("Q{qno}"),
                k.to_string(),
                fmt_ratio(run.hits() as f64 / base_hits as f64),
                format!("{:.0}", snap.reused_memory_pct()),
                format!("{:.0}", snap.reused_entries_pct()),
            ]);
        }
    }
    format!(
        "Figure 7 — credit admission vs resource utilisation\n{}",
        out.render()
    )
}

fn mixed_items(env: &ExpEnv) -> (Vec<Program>, Vec<BenchItem>) {
    let (qs, items) = tpch::mixed_batch(&tpch::workload::MIXED_QUERIES, 20, env.seed);
    (tpch_templates(&qs), to_bench_items(&items))
}

/// Figures 8 and 9: admission policies on the mixed 200-query workload —
/// total memory, reused %, hit ratio vs KEEPALL and execution time, as the
/// credit parameter grows.
pub fn fig8_9(env: &ExpEnv) -> String {
    let cat = env.tpch();
    let (templates, items) = mixed_items(env);
    let naive = run_naive(cat.clone(), &templates, &items);
    let (keepall, ke) = run_recycled(
        cat.clone(),
        &templates,
        &items,
        RecyclerConfig::default(),
        false,
    );
    let ksnap = ke.snapshot();
    let base_hits = keepall.hits().max(1);
    let mut out = TextTable::new(&[
        "policy",
        "credits",
        "total-mem",
        "reused-mem %",
        "reused-RP %",
        "hit/keepall",
        "time",
    ]);
    out.row(vec![
        "keepall".into(),
        "-".into(),
        fmt_bytes(ksnap.bytes),
        format!("{:.0}", ksnap.reused_memory_pct()),
        format!("{:.0}", ksnap.reused_entries_pct()),
        "1.000".into(),
        fmt_dur(keepall.total),
    ]);
    for k in [3u32, 5, 7, 10] {
        for (name, adm) in [
            ("credit", AdmissionPolicy::Credit(k)),
            ("adapt", AdmissionPolicy::Adaptive(k)),
        ] {
            let cfg = RecyclerConfig::default().admission(adm);
            let (run, engine) = run_recycled(cat.clone(), &templates, &items, cfg, false);
            let snap = engine.snapshot();
            out.row(vec![
                name.into(),
                k.to_string(),
                fmt_bytes(snap.bytes),
                format!("{:.0}", snap.reused_memory_pct()),
                format!("{:.0}", snap.reused_entries_pct()),
                fmt_ratio(run.hits() as f64 / base_hits as f64),
                fmt_dur(run.total),
            ]);
        }
    }
    format!(
        "Figures 8/9 — admission policies on the 200-query mixed batch (naive total {})\n{}",
        fmt_dur(naive.total),
        out.render()
    )
}

/// Figures 10 and 11: eviction policies under entry-count and memory
/// limits — final hit ratios and time relative to naive.
pub fn fig10_11(env: &ExpEnv) -> String {
    let cat = env.tpch();
    let (templates, items) = mixed_items(env);
    let naive = run_naive(cat.clone(), &templates, &items);
    let (keepall, ke) = run_recycled(
        cat.clone(),
        &templates,
        &items,
        RecyclerConfig::default(),
        false,
    );
    let total_entries = ke.pool().len().max(1);
    let total_bytes = ke.pool().bytes().max(1);
    let _ = keepall;
    let mut out = TextTable::new(&["limit", "policy", "admission", "hit-ratio", "time/naive"]);
    let policies: [(&str, EvictionPolicy, AdmissionPolicy); 4] = [
        ("LRU", EvictionPolicy::Lru, AdmissionPolicy::KeepAll),
        ("CRD+LRU", EvictionPolicy::Lru, AdmissionPolicy::Credit(5)),
        ("BP", EvictionPolicy::Benefit, AdmissionPolicy::KeepAll),
        (
            "CRD+BP",
            EvictionPolicy::Benefit,
            AdmissionPolicy::Credit(5),
        ),
    ];
    for pct in [20usize, 40, 60, 80] {
        for (name, ev, adm) in policies.iter() {
            let cfg = RecyclerConfig::default()
                .admission(*adm)
                .eviction(*ev)
                .entry_limit((total_entries * pct / 100).max(4));
            let (run, _) = run_recycled(cat.clone(), &templates, &items, cfg, false);
            let hit = run.cumulative_hit_ratio().last().copied().unwrap_or(0.0);
            out.row(vec![
                format!("{pct}% CL"),
                name.to_string(),
                format!("{:?}", adm_label(adm)),
                format!("{hit:.3}"),
                fmt_ratio(run.total.as_secs_f64() / naive.total.as_secs_f64()),
            ]);
        }
    }
    for pct in [20usize, 40, 60, 80] {
        for (name, ev, adm) in policies.iter() {
            let cfg = RecyclerConfig::default()
                .admission(*adm)
                .eviction(*ev)
                .mem_limit((total_bytes * pct / 100).max(1024));
            let (run, _) = run_recycled(cat.clone(), &templates, &items, cfg, false);
            let hit = run.cumulative_hit_ratio().last().copied().unwrap_or(0.0);
            out.row(vec![
                format!("{pct}% Mem"),
                name.to_string(),
                format!("{:?}", adm_label(adm)),
                format!("{hit:.3}"),
                fmt_ratio(run.total.as_secs_f64() / naive.total.as_secs_f64()),
            ]);
        }
    }
    format!(
        "Figures 10/11 — eviction policies under resource limits (keepall: {} entries, {})\n{}",
        total_entries,
        fmt_bytes(total_bytes),
        out.render()
    )
}

fn adm_label(a: &AdmissionPolicy) -> &'static str {
    match a {
        AdmissionPolicy::KeepAll => "keepall",
        AdmissionPolicy::Credit(_) => "credit",
        AdmissionPolicy::Adaptive(_) => "adapt",
    }
}

/// Figures 12 and 13: recycling in the presence of updates — pool memory
/// and entry count over the batch with an update block after every `k`
/// queries (K=20 for Fig. 12, K=1 for Fig. 13).
pub fn fig12_13(env: &ExpEnv, k: usize) -> String {
    let cat = env.tpch();
    let (templates, items) = mixed_items(env);
    // measure the keepall total to scale the memory limits (paper: 5 GB
    // total, limits 2.5 GB and 1 GB)
    let (_, ke) = run_recycled(
        cat.clone(),
        &templates,
        &items,
        RecyclerConfig::default(),
        false,
    );
    let total_bytes = ke.pool().bytes().max(1);
    let configs: [(&str, RecyclerConfig); 3] = [
        ("KeepAll", RecyclerConfig::default()),
        (
            "LRU/50%",
            RecyclerConfig::default()
                .eviction(EvictionPolicy::Lru)
                .mem_limit(total_bytes / 2),
        ),
        (
            "LRU/20%",
            RecyclerConfig::default()
                .eviction(EvictionPolicy::Lru)
                .mem_limit(total_bytes / 5),
        ),
    ];
    let mut sections = String::new();
    for (name, cfg) in configs {
        let db = DatabaseBuilder::new(cat.clone()).recycler(cfg).build();
        let opt: Vec<Program> = templates.iter().map(|t| db.prepare(t.clone())).collect();
        let mut session = db.session();
        let mut rng = SmallRng::seed_from_u64(env.seed ^ 0xfeed);
        let mut series = TextTable::new(&["query#", "RP-mem", "RP-entries", "invalidated"]);
        let sample_every = (items.len() / 12).max(1);
        for (i, item) in items.iter().enumerate() {
            // one update block in the middle of every k-query block
            if k > 0 && i % k == k / 2 {
                let snapshot = db.catalog();
                let ins = tpch::insert_block(&snapshot, &mut rng, 8);
                session
                    .commit(Update::to("orders").insert(ins.order_rows))
                    .expect("insert orders");
                session
                    .commit(Update::to("lineitem").insert(ins.lineitem_rows))
                    .expect("insert lineitems");
                let snapshot = db.catalog();
                let del = tpch::delete_block(&snapshot, &mut rng, 4);
                session
                    .commit(Update::to("lineitem").delete(del.delete_lineitems))
                    .expect("delete lineitems");
                session
                    .commit(Update::to("orders").delete(del.delete_orders))
                    .expect("delete orders");
            }
            session
                .query(&opt[item.query_idx], &item.params)
                .expect("query runs");
            if i % sample_every == 0 || i + 1 == items.len() {
                series.row(vec![
                    (i + 1).to_string(),
                    fmt_bytes(db.pool().bytes()),
                    db.pool().len().to_string(),
                    db.stats().invalidated.to_string(),
                ]);
            }
        }
        sections.push_str(&format!("strategy {name}\n{}\n", series.render()));
    }
    format!(
        "Figures 12/13 — recycling with updates, K={k} (keepall baseline {})\n{}",
        fmt_bytes(total_bytes),
        sections
    )
}

/// Table III: recycle-pool content by instruction family after the
/// SkyServer batch.
pub fn table3(env: &ExpEnv) -> String {
    let cat = env.sky();
    let (templates, log) = skyserver::sample_log(100, env.seed);
    let items: Vec<BenchItem> = log
        .iter()
        .map(|l| BenchItem {
            query_idx: l.query_idx,
            label: l.query_idx as u8,
            params: l.params.clone(),
        })
        .collect();
    let (run, engine) = run_recycled(cat, &templates, &items, RecyclerConfig::default(), false);
    let snap = engine.snapshot();
    let mut out = TextTable::new(&[
        "family",
        "lines",
        "memory",
        "avg-time",
        "reused-lines",
        "reuses",
        "time-saved",
    ]);
    for (fam, row) in &snap.by_family {
        out.row(vec![
            fam.to_string(),
            row.lines.to_string(),
            fmt_bytes(row.bytes as usize),
            fmt_dur(row.avg_cpu),
            row.reused_lines.to_string(),
            row.reuses.to_string(),
            fmt_dur(row.time_saved),
        ]);
    }
    let monitored = run.monitored();
    let hits = run.hits();
    format!(
        "Table III — recycle pool after the 100-query SkyServer batch\n\
         monitored instructions: {monitored}, reused: {hits} ({:.1}%)\n{}",
        100.0 * hits as f64 / monitored.max(1) as f64,
        out.render()
    )
}

/// Figure 14: SkyServer batch times — naive vs resource-limited CRD/LRU vs
/// KEEPALL/unlimited, for batch splits 4×25, 2×50 and 1×100 (pool emptied
/// between sub-batches).
pub fn fig14(env: &ExpEnv) -> String {
    let cat = env.sky();
    let (templates, log) = skyserver::sample_log(100, env.seed);
    let items: Vec<BenchItem> = log
        .iter()
        .map(|l| BenchItem {
            query_idx: l.query_idx,
            label: l.query_idx as u8,
            params: l.params.clone(),
        })
        .collect();
    let naive = run_naive(cat.clone(), &templates, &items);
    // keepall baseline for the memory limit
    let (_, ke) = run_recycled(
        cat.clone(),
        &templates,
        &items,
        RecyclerConfig::default(),
        false,
    );
    let limit = (ke.pool().bytes() * 65 / 100).max(1024);
    let mut out = TextTable::new(&["split", "Naive", "CRD/LRU/65%", "KeepAll/Unlim"]);
    for &split in &[4usize, 2, 1] {
        let chunk = items.len() / split;
        let mut crd_total = Duration::ZERO;
        let mut keep_total = Duration::ZERO;
        for part in items.chunks(chunk) {
            let cfg = RecyclerConfig::default()
                .admission(AdmissionPolicy::Credit(5))
                .eviction(EvictionPolicy::Lru)
                .mem_limit(limit);
            let (r, _) = run_recycled(cat.clone(), &templates, part, cfg, false);
            crd_total += r.total;
            let (r2, _) = run_recycled(
                cat.clone(),
                &templates,
                part,
                RecyclerConfig::default(),
                false,
            );
            keep_total += r2.total;
        }
        out.row(vec![
            format!("{}x{}", split, chunk),
            fmt_dur(naive.total),
            fmt_dur(crd_total),
            fmt_dur(keep_total),
        ]);
    }
    format!(
        "Figure 14 — SkyServer batch (100 queries)\n{}",
        out.render()
    )
}

/// Figure 15: the combined-subsumption micro-benchmarks B2 (k=2) and B4
/// (k=4): per-query total-time ratio, seed-select time ratio and the
/// cumulative algorithm search time.
pub fn fig15(env: &ExpEnv) -> String {
    let mut sections = String::new();
    for (name, seeds, k) in [("B2", 20usize, 2usize), ("B4", 12, 4)] {
        let cat = env.sky();
        let (template, mitems) = skyserver::microbench(seeds, k, 0.02, env.seed);
        let items: Vec<BenchItem> = mitems
            .iter()
            .map(|m| BenchItem {
                query_idx: 0,
                label: m.is_seed as u8,
                params: m.params.clone(),
            })
            .collect();
        let templates = vec![template];
        let naive = run_naive(cat.clone(), &templates, &items);
        // custom loop to read the subsumption search time after each query
        let db = DatabaseBuilder::new(cat).build();
        let t = db.prepare(templates[0].clone());
        let mut session = db.session();
        let mut out = TextTable::new(&[
            "query#",
            "kind",
            "total-ratio",
            "seed-select-ratio",
            "alg-time",
            "subsumed",
        ]);
        let mut prev_search = Duration::ZERO;
        let mut seed_ratios: Vec<f64> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let res = session
                .query_output(&t, &item.params)
                .expect("microbench query");
            let search = db.stats().subsume_search;
            let alg = search.saturating_sub(prev_search);
            prev_search = search;
            let is_seed = mitems[i].is_seed;
            let ratio =
                res.stats.elapsed.as_secs_f64() / naive.runs[i].elapsed.as_secs_f64().max(1e-9);
            let select_ratio = {
                let rec_sel: Duration = res
                    .stats
                    .profile
                    .iter()
                    .filter(|p| p.op == "algebra.select")
                    .map(|p| p.cpu)
                    .sum();
                let nav_sel = naive.runs[i].elapsed; // select dominates the naive plan
                rec_sel.as_secs_f64() / nav_sel.as_secs_f64().max(1e-9)
            };
            if is_seed {
                seed_ratios.push(select_ratio);
                out.row(vec![
                    (i + 1).to_string(),
                    "seed".into(),
                    format!("{ratio:.2}"),
                    format!("{select_ratio:.2}"),
                    fmt_dur(alg),
                    (res.stats.subsumed > 0).to_string(),
                ]);
            } else if i % 3 == 0 {
                out.row(vec![
                    (i + 1).to_string(),
                    "cover".into(),
                    format!("{ratio:.2}"),
                    "-".into(),
                    fmt_dur(alg),
                    (res.stats.subsumed > 0).to_string(),
                ]);
            }
        }
        let avg_seed = seed_ratios.iter().sum::<f64>() / seed_ratios.len().max(1) as f64;
        sections.push_str(&format!(
            "benchmark {name} (seeds={seeds}, k={k}): avg seed select ratio {avg_seed:.2}\n{}\n",
            out.render()
        ));
    }
    format!("Figure 15 — combined subsumption micro-benchmarks\n{sections}")
}

/// Ablation of the recycler's design choices on the mixed 200-query batch:
/// full recycler vs no combined subsumption vs no subsumption at all vs
/// naive execution. Not a paper artefact — it isolates how much each §5
/// mechanism contributes on top of exact matching.
pub fn ablation(env: &ExpEnv) -> String {
    let cat = env.tpch();
    let (templates, items) = mixed_items(env);
    let naive = run_naive(cat.clone(), &templates, &items);
    let mut out = TextTable::new(&["configuration", "hits", "subsumed", "time", "time/naive"]);
    out.row(vec![
        "naive".into(),
        "-".into(),
        "-".into(),
        fmt_dur(naive.total),
        "1.000".into(),
    ]);
    let configs = [
        ("full recycler", RecyclerConfig::default()),
        (
            "no combined subsumption",
            RecyclerConfig::default().combined(false),
        ),
        (
            "no subsumption",
            RecyclerConfig::default().subsumption(false),
        ),
    ];
    for (name, cfg) in configs {
        let (run, _) = run_recycled(cat.clone(), &templates, &items, cfg, false);
        let subsumed: u64 = run.runs.iter().map(|r| r.subsumed).sum();
        out.row(vec![
            name.into(),
            run.hits().to_string(),
            subsumed.to_string(),
            fmt_dur(run.total),
            fmt_ratio(run.total.as_secs_f64() / naive.total.as_secs_f64()),
        ]);
    }
    format!(
        "Ablation — contribution of the subsumption mechanisms (§5)\n{}",
        out.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_env() -> ExpEnv {
        ExpEnv {
            sf: 0.002,
            sky_objects: 3000,
            seed: 42,
        }
    }

    #[test]
    fn profile_runs_and_reports_hits() {
        let s = profile_query(&tiny_env(), 18, 3);
        assert!(s.contains("hit-ratio"));
        assert!(s.lines().count() > 4);
    }

    #[test]
    fn fig15_reports_subsumption() {
        let env = ExpEnv {
            sf: 0.002,
            sky_objects: 4000,
            seed: 42,
        };
        let s = fig15(&env);
        assert!(s.contains("seed"));
        assert!(
            s.contains("true"),
            "at least one seed query must be answered by subsumption:\n{s}"
        );
    }
}
