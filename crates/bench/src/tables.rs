//! Minimal aligned-column text tables for experiment output.

use std::fmt::Write as _;

/// A text table with a header row and aligned columns.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total.max(ncols)));
        for r in &self.rows {
            line(r, &mut out);
        }
        out
    }
}

/// Format a duration in adaptive units (the paper mixes ms and s).
pub fn fmt_dur(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

/// Format bytes in adaptive units.
pub fn fmt_bytes(b: usize) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KB", b as f64 / 1024.0)
    } else {
        format!("{:.1}MB", b as f64 / (1024.0 * 1024.0))
    }
}

/// Format a ratio with 3 decimals.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["Q", "time"]);
        t.row(vec!["Q1".into(), "5.72".into()]);
        t.row(vec!["Q22".into(), "0.65".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('Q') && lines[0].contains("time"));
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_dur(Duration::from_micros(12)), "12us");
        assert_eq!(fmt_dur(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.000s");
    }

    #[test]
    fn byte_units() {
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MB");
    }
}
