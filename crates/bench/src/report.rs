//! Machine-readable benchmark report: `BENCH_recycler.json`.
//!
//! `repro bench` (and `repro all`) runs a small canonical workload set —
//! naive engine vs recycler, sequential vs concurrent sessions — and
//! emits one JSON document so successive PRs accumulate a perf
//! trajectory that scripts can diff. The JSON is hand-rolled: the
//! container builds offline, so no serde.

use std::fmt;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use recycler::RecyclerConfig;
use rmal::Program;

use crate::concurrent::{
    partition_streams, pool_scaling, run_concurrent, server_mixed, update_mixed, ScalePoint,
};
use crate::driver::{run_naive, run_recycled, BenchItem};
use crate::experiments::ExpEnv;

/// A minimal JSON value (strings, numbers, bools, arrays, objects).
#[derive(Debug, Clone)]
pub enum Json {
    /// Float (serialised with enough precision for millisecond timings).
    Num(f64),
    /// Unsigned integer.
    Int(u64),
    /// String (escaped on render).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Array.
    Arr(Vec<Json>),
    /// Object, field order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Int(i) => write!(f, "{i}"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape(s, &mut buf);
                write!(f, "\"{buf}\"")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut kb = String::new();
                    escape(k, &mut kb);
                    write!(f, "\"{kb}\":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn ms(d: Duration) -> Json {
    Json::Num((d.as_secs_f64() * 1e3 * 1000.0).round() / 1000.0)
}

/// One naive-vs-recycler comparison over a template/item batch.
fn compare(
    name: &str,
    catalog: rbat::Catalog,
    templates: &[Program],
    items: &[BenchItem],
    config: RecyclerConfig,
) -> Json {
    let naive = run_naive(catalog.clone(), templates, items);
    let (rec, db) = run_recycled(catalog, templates, items, config, false);
    let stats = db.stats();
    let (pool_entries, pool_bytes) = {
        let pool = db.pool();
        (pool.len() as u64, pool.bytes() as u64)
    };
    let speedup = if rec.total.as_secs_f64() > 0.0 {
        naive.total.as_secs_f64() / rec.total.as_secs_f64()
    } else {
        0.0
    };
    Json::obj(vec![
        ("name", Json::Str(name.to_string())),
        ("queries", Json::Int(items.len() as u64)),
        ("naive_ms", ms(naive.total)),
        ("recycled_ms", ms(rec.total)),
        ("speedup", Json::Num((speedup * 1000.0).round() / 1000.0)),
        ("monitored", Json::Int(rec.monitored())),
        ("hits", Json::Int(rec.hits())),
        ("subsumed", Json::Int(stats.subsumed)),
        ("admissions", Json::Int(stats.admissions)),
        ("evictions", Json::Int(stats.evictions)),
        ("evict_gather_rounds", Json::Int(stats.evict_gather_rounds)),
        (
            "evict_gather_visited",
            Json::Int(stats.evict_gather_visited),
        ),
        ("leaf_index_size", Json::Int(stats.leaf_index_size)),
        ("pool_entries", Json::Int(pool_entries)),
        ("pool_bytes", Json::Int(pool_bytes)),
        ("time_saved_ms", ms(stats.time_saved)),
        ("overhead_ms", ms(stats.overhead)),
    ])
}

/// The `eviction_pressure` scenario: eviction gather cost at a fixed leaf
/// population across growing pool sizes — visited-per-round must stay
/// flat (O(leaves), not O(pool)) now that eviction gathers from the
/// incremental leaf index.
fn eviction_pressure_experiment() -> Json {
    let out = crate::pressure::eviction_pressure(64, &[1, 4, 16, 64], 32);
    Json::obj(vec![
        ("name", Json::Str("eviction_pressure".to_string())),
        ("chains", Json::Int(out.chains as u64)),
        ("evict_per_point", Json::Int(out.evict_per_point as u64)),
        (
            "gather_size_independent",
            Json::Bool(out.gather_is_size_independent(1.0)),
        ),
        (
            "points",
            Json::Arr(
                out.points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("depth", Json::Int(p.depth as u64)),
                            ("pool_entries", Json::Int(p.pool_entries as u64)),
                            ("leaves", Json::Int(p.leaves as u64)),
                            ("evicted", Json::Int(p.evicted as u64)),
                            ("gather_rounds", Json::Int(p.gather_rounds)),
                            ("gather_visited", Json::Int(p.gather_visited)),
                            (
                                "visited_per_round",
                                Json::Num((p.visited_per_round * 100.0).round() / 100.0),
                            ),
                            ("elapsed_ms", ms(p.elapsed)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serialize one side of the `background_eviction` comparison.
fn background_run_json(r: &crate::pressure::BackgroundRun) -> Json {
    Json::obj(vec![
        ("collector", Json::Bool(r.collector)),
        ("queries", Json::Int(r.queries as u64)),
        ("p50_ms", ms(r.p50)),
        ("p99_ms", ms(r.p99)),
        (
            "steady_inline_evictions",
            Json::Int(r.steady_inline_evictions),
        ),
        ("inline_evictions", Json::Int(r.inline_evictions)),
        ("background_evictions", Json::Int(r.background_evictions)),
        ("minor_rounds", Json::Int(r.minor_rounds)),
        ("major_rounds", Json::Int(r.major_rounds)),
        (
            "avg_minor_ms",
            Json::Num((r.avg_minor_ms * 1000.0).round() / 1000.0),
        ),
        (
            "avg_major_ms",
            Json::Num((r.avg_major_ms * 1000.0).round() / 1000.0),
        ),
        ("headroom_bytes", Json::Int(r.headroom_bytes)),
    ])
}

/// The `background_eviction` scenario: steady-phase admission latency at
/// the lowmem 1 MiB cap with the background collector off vs on. The
/// steady phase with the collector must be free of inline evictions —
/// that is the whole point of the collector — and the JSON records the
/// p50/p99 tail on both sides so the trajectory shows what that buys.
fn background_eviction_experiment(env: &ExpEnv) -> Json {
    let out = crate::pressure::background_eviction(env.sf, 60, 15, 1 << 20);
    Json::obj(vec![
        ("name", Json::Str("background_eviction".to_string())),
        ("cap_bytes", Json::Int(out.cap_bytes as u64)),
        ("warmup", Json::Int(out.warmup as u64)),
        (
            "without_collector",
            background_run_json(&out.without_collector),
        ),
        ("with_collector", background_run_json(&out.with_collector)),
    ])
}

/// Serialize one side of the `tiered_lowmem` comparison.
fn tiered_run_json(r: &crate::tiered::TieredRun) -> Json {
    Json::obj(vec![
        ("tiered", Json::Bool(r.tiered)),
        ("queries", Json::Int(r.queries as u64)),
        ("elapsed_ms", ms(r.elapsed)),
        ("hits", Json::Int(r.hits)),
        ("monitored", Json::Int(r.monitored)),
        (
            "hit_ratio",
            Json::Num((r.hit_ratio * 1000.0).round() / 1000.0),
        ),
        ("evictions", Json::Int(r.evictions)),
        ("inline_evictions", Json::Int(r.inline_evictions)),
        ("demotions_compressed", Json::Int(r.demotions_compressed)),
        ("demotions_spilled", Json::Int(r.demotions_spilled)),
        ("tier_promotions", Json::Int(r.tier_promotions)),
        ("raw_bytes", Json::Int(r.raw_bytes)),
        ("compressed_bytes", Json::Int(r.compressed_bytes)),
        ("spilled_bytes", Json::Int(r.spilled_bytes)),
        ("decompress_ms", ms(r.decompress_cost)),
        ("rehydrate_ms", ms(r.rehydrate_cost)),
    ])
}

/// The `tiered_lowmem` scenario: hit retention at the same 1 MiB cap with
/// the residency ladder off vs on. The tiered side must hold a hit ratio
/// at least as high as the raw side — that is the acceptance gate the
/// trajectory keeps re-proving — and the per-tier counters show *how*:
/// cold entries demote (compress, then spill off-cap) instead of dying.
fn tiered_lowmem_experiment(env: &ExpEnv) -> Json {
    let out = crate::tiered::tiered_lowmem(env.sf, 16, 3, 1 << 20);
    Json::obj(vec![
        ("name", Json::Str("tiered_lowmem".to_string())),
        ("cap_bytes", Json::Int(out.cap_bytes as u64)),
        ("distinct", Json::Int(out.distinct as u64)),
        ("cycles", Json::Int(out.cycles as u64)),
        (
            "tiering_retains_hits",
            Json::Bool(out.tiering_retains_hits()),
        ),
        ("without_tiering", tiered_run_json(&out.without_tiering)),
        ("with_tiering", tiered_run_json(&out.with_tiering)),
    ])
}

/// Serialize one side of the `operator_reuse` comparison.
fn opstate_run_json(r: &crate::opstate::OpStateRun) -> Json {
    Json::obj(vec![
        ("operator_state", Json::Bool(r.operator_state)),
        ("elapsed_ms", ms(r.elapsed)),
        ("result_hits", Json::Int(r.result_hits)),
        ("artifact_hits", Json::Int(r.artifact_hits)),
        ("artifact_admissions", Json::Int(r.artifact_admissions)),
        ("artifact_bytes", Json::Int(r.artifact_bytes)),
        ("artifact_saved_ms", ms(r.artifact_saved)),
    ])
}

/// The `operator_reuse` scenario: a workload whose *answers* never repeat
/// but whose operator state (one join hash table, one sorted run shared
/// by a top-N family) always does, run with `recycle_operator_state` off
/// vs on. The gate `operator_reuse_wins` requires the on-side to both
/// reuse artifacts and finish faster — artifact recycling must pay for
/// itself where result recycling is starved.
fn operator_reuse_experiment() -> Json {
    let out = crate::opstate::operator_reuse(20_000, 36);
    Json::obj(vec![
        ("name", Json::Str("operator_reuse".to_string())),
        ("rows", Json::Int(out.rows as u64)),
        ("queries", Json::Int(out.queries as u64)),
        (
            "artifact_hit_ratio",
            Json::Num((out.artifact_hit_ratio() * 1000.0).round() / 1000.0),
        ),
        ("operator_reuse_wins", Json::Bool(out.reuse_wins())),
        ("without_state", opstate_run_json(&out.without_state)),
        ("with_state", opstate_run_json(&out.with_state)),
    ])
}

/// The concurrent-sessions experiment: the same SkyServer log replayed by
/// one session and by `n` sessions over one shared pool.
fn concurrent_experiment(env: &ExpEnv, n: usize) -> Json {
    let cat = skyserver::generate(skyserver::SkyScale::new(env.sky_objects.min(20_000)));
    let (templates, log) = skyserver::sample_log(96, env.seed);
    let items: Vec<BenchItem> = log
        .into_iter()
        .map(|l| BenchItem {
            query_idx: l.query_idx,
            label: l.query_idx as u8,
            params: l.params,
        })
        .collect();

    let sequential = run_concurrent(
        cat.clone(),
        &templates,
        &partition_streams(&items, 1),
        RecyclerConfig::default(),
    );
    let concurrent = run_concurrent(
        cat,
        &templates,
        &partition_streams(&items, n),
        RecyclerConfig::default(),
    );
    Json::obj(vec![
        ("name", Json::Str(format!("skyserver_concurrent_{n}x"))),
        ("queries", Json::Int(items.len() as u64)),
        ("sessions", Json::Int(n as u64)),
        ("sequential_ms", ms(sequential.elapsed)),
        ("concurrent_ms", ms(concurrent.elapsed)),
        ("hits", Json::Int(concurrent.stats.hits)),
        (
            "cross_session_hits",
            Json::Int(concurrent.stats.cross_session_hits),
        ),
        (
            "duplicate_admissions",
            Json::Int(concurrent.stats.duplicate_admissions),
        ),
        ("evictions", Json::Int(concurrent.stats.evictions)),
        ("pool_entries", Json::Int(concurrent.pool_entries as u64)),
        ("pool_bytes", Json::Int(concurrent.pool_bytes as u64)),
        (
            "hit_ratio",
            Json::Num((concurrent.hit_ratio() * 1000.0).round() / 1000.0),
        ),
    ])
}

/// Serialize one [`ScalePoint`].
fn scale_point_json(p: &ScalePoint) -> Json {
    Json::obj(vec![
        ("sessions", Json::Int(p.sessions as u64)),
        ("queries", Json::Int(p.queries as u64)),
        ("elapsed_ms", ms(p.elapsed)),
        (
            "queries_per_sec",
            Json::Num((p.queries_per_sec * 10.0).round() / 10.0),
        ),
        (
            "ops_per_sec",
            Json::Num((p.ops_per_sec * 10.0).round() / 10.0),
        ),
        (
            "hit_ratio",
            Json::Num((p.hit_ratio * 1000.0).round() / 1000.0),
        ),
        ("cross_session_hits", Json::Int(p.cross_session_hits)),
        ("duplicate_admissions", Json::Int(p.duplicate_admissions)),
    ])
}

/// The `pool_scaling` experiment: per-session-count probe+admission
/// throughput and hit ratio on the sharded pool, plus the pre-shard
/// single-lock baseline at 8 sessions for the contention comparison.
fn pool_scaling_experiment() -> Json {
    const QUERIES_PER_SESSION: usize = 192;
    let sharded = pool_scaling(
        &[1, 2, 4, 8, 16],
        QUERIES_PER_SESSION,
        RecyclerConfig::default(),
    );
    let single_lock = pool_scaling(
        &[8],
        QUERIES_PER_SESSION,
        RecyclerConfig::default().shards(1),
    );
    let speedup_8x = match (
        sharded.iter().find(|p| p.sessions == 8),
        single_lock.first(),
    ) {
        (Some(s), Some(b)) if b.ops_per_sec > 0.0 => s.ops_per_sec / b.ops_per_sec,
        _ => 0.0,
    };
    // Scaling numbers only mean something relative to the hardware: on a
    // single-core host the sweep measures per-op overhead, not
    // parallelism (there are no idle cores for sharding to feed).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    Json::obj(vec![
        ("name", Json::Str("pool_scaling".to_string())),
        ("cores", Json::Int(cores as u64)),
        ("queries_per_session", Json::Int(QUERIES_PER_SESSION as u64)),
        (
            "points",
            Json::Arr(sharded.iter().map(scale_point_json).collect()),
        ),
        (
            "single_lock_8x",
            single_lock
                .first()
                .map(scale_point_json)
                .unwrap_or(Json::Bool(false)),
        ),
        (
            "sharded_vs_single_lock_8x",
            Json::Num((speedup_8x * 1000.0).round() / 1000.0),
        ),
    ])
}

/// The `update_mixed` experiment: N reader sessions replaying a warm
/// alphabet against one table while a writer commits deltas to another —
/// scoped invalidation keeps the readers pure-hit, and one quiescent
/// instrumented commit reports how many shards it write-locked out of the
/// pool's total.
fn update_mixed_experiment() -> Json {
    let out = update_mixed(
        8,
        24,
        6,
        recycler::RecyclerConfig::default()
            .shards(16)
            .update_mode(recycler::UpdateMode::Propagate),
    );
    Json::obj(vec![
        ("name", Json::Str("update_mixed".to_string())),
        ("readers", Json::Int(out.readers as u64)),
        ("reader_queries", Json::Int(out.reader_queries as u64)),
        ("commits", Json::Int(out.commits as u64)),
        ("elapsed_ms", ms(out.elapsed)),
        (
            "reader_qps",
            Json::Num((out.reader_qps * 10.0).round() / 10.0),
        ),
        (
            "reader_hit_ratio",
            Json::Num((out.reader_hit_ratio * 1000.0).round() / 1000.0),
        ),
        ("invalidated", Json::Int(out.invalidated)),
        ("propagated", Json::Int(out.propagated)),
        (
            "commit_locked_shards",
            Json::Int(out.commit_locked_shards as u64),
        ),
        ("shards", Json::Int(out.shards as u64)),
    ])
}

/// The `server_mixed` scenario: N TCP clients replay the SkyServer mix
/// against the `rcy-server` front-end — the full wire path (framing,
/// per-connection sessions, recycling, replies) becomes part of the perf
/// trajectory.
fn server_mixed_experiment(env: &ExpEnv) -> Json {
    let out = server_mixed(4, 64, env.sky_objects.min(8_000), env.seed);
    Json::obj(vec![
        ("name", Json::Str("server_mixed".to_string())),
        ("clients", Json::Int(out.clients as u64)),
        ("queries", Json::Int(out.queries as u64)),
        ("elapsed_ms", ms(out.elapsed)),
        (
            "queries_per_sec",
            Json::Num((out.queries_per_sec * 10.0).round() / 10.0),
        ),
        (
            "hit_ratio",
            Json::Num((out.hit_ratio * 1000.0).round() / 1000.0),
        ),
        ("cross_session_hits", Json::Int(out.cross_session_hits)),
        ("server_sessions", Json::Int(out.server_sessions)),
        ("rejected_connections", Json::Int(out.rejected_connections)),
    ])
}

/// The `server_c10k` scenario: an idle swarm plus hot clients against
/// the epoll reactor, with the retired thread-per-connection
/// architecture rebuilt as the throughput baseline. The two headline
/// numbers are `per_idle_conn_bytes` (must stay flat — buffers, not
/// thread stacks) and `reactor_qps` vs `baseline_qps` (must not lose).
/// Scaled by `REPRO_C10K_IDLE` / `REPRO_C10K_HOT` for the CI smoke leg.
fn server_c10k_experiment() -> Json {
    let idle: usize = std::env::var("REPRO_C10K_IDLE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let hot: usize = std::env::var("REPRO_C10K_HOT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let out = crate::c10k::server_c10k(idle, hot, 150);
    Json::obj(vec![
        ("name", Json::Str("server_c10k".to_string())),
        ("idle_connections", Json::Int(out.idle_connections as u64)),
        ("hot_clients", Json::Int(out.hot_clients as u64)),
        ("hot_queries", Json::Int(out.hot_queries as u64)),
        ("live_connections", Json::Int(out.live_connections)),
        ("nofile_limit", Json::Int(out.nofile_limit)),
        ("rss_before_idle", Json::Int(out.rss_before_idle)),
        ("rss_with_idle", Json::Int(out.rss_with_idle)),
        (
            "per_idle_conn_bytes",
            Json::Num((out.per_idle_conn_bytes * 10.0).round() / 10.0),
        ),
        (
            "idle_memory_flat",
            Json::Bool(out.idle_memory_is_flat(64.0 * 1024.0)),
        ),
        (
            "reactor_qps",
            Json::Num((out.reactor_qps * 10.0).round() / 10.0),
        ),
        (
            "baseline_qps",
            Json::Num((out.baseline_qps * 10.0).round() / 10.0),
        ),
        (
            "sequential_qps",
            Json::Num((out.sequential_qps * 10.0).round() / 10.0),
        ),
        (
            "pipelined_qps",
            Json::Num((out.pipelined_qps * 10.0).round() / 10.0),
        ),
        (
            "reactor_vs_baseline",
            Json::Num(if out.baseline_qps > 0.0 {
                ((out.reactor_qps / out.baseline_qps) * 1000.0).round() / 1000.0
            } else {
                0.0
            }),
        ),
    ])
}

/// Build the whole report document.
pub fn bench_report(env: &ExpEnv) -> Json {
    let mut experiments: Vec<Json> = Vec::new();

    // TPC-H mixed batch: the paper's §7 shape.
    {
        let cat = env.tpch();
        let (qs, items) = tpch::mixed_batch(&tpch::workload::MIXED_QUERIES, 4, env.seed);
        let templates: Vec<Program> = qs.iter().map(|q| q.template.clone()).collect();
        let items: Vec<BenchItem> = items
            .into_iter()
            .map(|i| BenchItem {
                query_idx: i.query_idx,
                label: i.query_no,
                params: i.params,
            })
            .collect();
        experiments.push(compare(
            "tpch_mixed_batch",
            cat.clone(),
            &templates,
            &items,
            RecyclerConfig::default(),
        ));
        // The same batch under a 1 MiB budget: eviction policy cost and
        // churn become part of the perf trajectory (the unlimited runs
        // never evict).
        experiments.push(compare(
            "tpch_mixed_lowmem",
            cat,
            &templates,
            &items,
            RecyclerConfig::default().mem_limit(1 << 20),
        ));
    }

    // TPC-H repeat instances of the flagship Q18 (paper Fig. 4b).
    {
        let cat = env.tpch();
        let q = tpch::query(18);
        let mut rng = SmallRng::seed_from_u64(env.seed);
        let params = (q.params)(&mut rng);
        let items: Vec<BenchItem> = (0..6)
            .map(|_| BenchItem {
                query_idx: 0,
                label: 18,
                params: params.clone(),
            })
            .collect();
        experiments.push(compare(
            "tpch_q18_repeat",
            cat,
            std::slice::from_ref(&q.template),
            &items,
            RecyclerConfig::default(),
        ));
    }

    // SkyServer log replay (paper §8.2).
    {
        let cat = skyserver::generate(skyserver::SkyScale::new(env.sky_objects.min(20_000)));
        let (templates, log) = skyserver::sample_log(60, env.seed);
        let items: Vec<BenchItem> = log
            .into_iter()
            .map(|l| BenchItem {
                query_idx: l.query_idx,
                label: l.query_idx as u8,
                params: l.params,
            })
            .collect();
        experiments.push(compare(
            "skyserver_log",
            cat,
            &templates,
            &items,
            RecyclerConfig::default(),
        ));
    }

    // Multi-session serving over one shared pool.
    experiments.push(concurrent_experiment(env, 4));

    // Session-count sweep on the sharded pool.
    experiments.push(pool_scaling_experiment());

    // Readers vs one committing writer (scoped update invalidation).
    experiments.push(update_mixed_experiment());

    // N TCP clients over the SkyServer mix through the serving front-end.
    experiments.push(server_mixed_experiment(env));

    // Thousands of idle connections + hot clients vs the retired
    // thread-per-connection baseline.
    experiments.push(server_c10k_experiment());

    // Eviction gather cost vs pool size (the leaf-index O(leaves) bound).
    experiments.push(eviction_pressure_experiment());

    // Admission latency at the lowmem cap, collector off vs on.
    experiments.push(background_eviction_experiment(env));

    // Hit retention at the lowmem cap, residency ladder off vs on.
    experiments.push(tiered_lowmem_experiment(env));

    // Operator-state recycling (typed artifacts) off vs on, on a
    // workload where result recycling is starved.
    experiments.push(operator_reuse_experiment());

    Json::obj(vec![
        ("schema", Json::Str("recycler-bench/v1".to_string())),
        (
            "config",
            Json::obj(vec![
                ("tpch_sf", Json::Num(env.sf)),
                ("sky_objects", Json::Int(env.sky_objects as u64)),
                ("seed", Json::Int(env.seed)),
            ]),
        ),
        ("experiments", Json::Arr(experiments)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_and_escapes() {
        let j = Json::obj(vec![
            ("a", Json::Int(3)),
            ("b", Json::Str("x\"y\n".to_string())),
            ("c", Json::Arr(vec![Json::Bool(true), Json::Num(1.5)])),
        ]);
        assert_eq!(j.to_string(), r#"{"a":3,"b":"x\"y\n","c":[true,1.5]}"#);
    }

    #[test]
    fn report_has_all_experiments() {
        let env = ExpEnv {
            sf: 0.002,
            sky_objects: 2000,
            seed: 11,
        };
        let report = bench_report(&env);
        let text = report.to_string();
        for name in [
            "tpch_mixed_batch",
            "tpch_mixed_lowmem",
            "tpch_q18_repeat",
            "skyserver_log",
            "skyserver_concurrent_4x",
            "cross_session_hits",
            "pool_scaling",
            "single_lock_8x",
            "update_mixed",
            "commit_locked_shards",
            "server_mixed",
            "rejected_connections",
            "server_c10k",
            "per_idle_conn_bytes",
            "reactor_vs_baseline",
            "eviction_pressure",
            "gather_size_independent",
            "evict_gather_visited",
            "background_eviction",
            "steady_inline_evictions",
            "background_evictions",
            "tiered_lowmem",
            "tiering_retains_hits",
            "demotions_compressed",
            "tier_promotions",
            "operator_reuse",
            "artifact_hit_ratio",
            "artifact_saved_ms",
        ] {
            assert!(text.contains(name), "missing {name} in {text}");
        }
        // the collector side of background_eviction must keep the steady
        // phase free of inline evictions
        let bg = text
            .split("\"name\":\"background_eviction\"")
            .nth(1)
            .expect("background_eviction experiment present");
        let with = bg
            .split("\"with_collector\":")
            .nth(1)
            .expect("with_collector side present");
        assert!(
            with.contains("\"steady_inline_evictions\":0"),
            "steady-state admissions evicted inline: {with}"
        );
        assert!(
            text.contains("\"gather_size_independent\":true"),
            "gather cost must be flat across pool sizes: {text}"
        );
        assert!(
            text.contains("\"tiering_retains_hits\":true"),
            "the residency ladder lost hits vs the raw pool: {text}"
        );
        // operator-state recycling must reuse artifacts AND beat the
        // artifact-free recycler on the starved-result workload
        assert!(
            text.contains("\"operator_reuse_wins\":true"),
            "operator-state recycling did not pay for itself: {text}"
        );
        let op = text
            .split("\"name\":\"operator_reuse\"")
            .nth(1)
            .expect("operator_reuse experiment present");
        let with = op
            .split("\"with_state\":")
            .nth(1)
            .expect("with_state side present");
        let artifact_hits: u64 = with
            .split("\"artifact_hits\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.parse().ok())
            .expect("artifact_hits field");
        assert!(artifact_hits > 0, "no artifact reuse in the report: {op}");
        // the low-memory run must actually exercise eviction
        let lowmem = text
            .split("\"name\":\"tpch_mixed_lowmem\"")
            .nth(1)
            .expect("lowmem experiment present");
        let evictions: u64 = lowmem
            .split("\"evictions\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.parse().ok())
            .expect("evictions field");
        assert!(evictions > 0, "1 MiB budget must evict: {lowmem}");
    }
}
