//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                 # everything (includes the JSON bench report)
//! repro table2 fig4 fig15   # selected experiments
//! repro bench               # only BENCH_recycler.json
//! ```
//!
//! Environment: `REPRO_SF` (TPC-H scale factor, default 0.01),
//! `REPRO_SKY` (sky objects, default 40000), `REPRO_SEED`,
//! `BENCH_OUT` (path of the JSON report, default `BENCH_recycler.json`).

use rcy_bench::experiments::{self, ExpEnv};
use rcy_bench::report;

fn main() {
    let env = ExpEnv::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10", "fig12", "fig13", "table3",
            "fig14", "fig15", "ablation", "bench",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    eprintln!(
        "# repro: sf={} sky={} seed={} — experiments: {wanted:?}",
        env.sf, env.sky_objects, env.seed
    );
    for exp in wanted {
        let started = std::time::Instant::now();
        let output = match exp {
            "table2" => experiments::table2(&env),
            "fig4" => experiments::fig4(&env),
            "fig5" => experiments::fig5(&env),
            "fig6" => experiments::fig6(&env),
            "fig7" => experiments::fig7(&env),
            "fig8" | "fig9" | "fig8_9" => experiments::fig8_9(&env),
            "fig10" | "fig11" | "fig10_11" => experiments::fig10_11(&env),
            "fig12" => experiments::fig12_13(&env, 20),
            "fig13" => experiments::fig12_13(&env, 1),
            "table3" => experiments::table3(&env),
            "fig14" => experiments::fig14(&env),
            "fig15" => experiments::fig15(&env),
            "ablation" => experiments::ablation(&env),
            "bench" => {
                let path =
                    std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_recycler.json".into());
                let doc = report::bench_report(&env);
                let text = format!("{doc}\n");
                match std::fs::write(&path, &text) {
                    Ok(()) => eprintln!("# bench report written to {path}"),
                    Err(e) => eprintln!("# bench report NOT written ({path}: {e})"),
                }
                text
            }
            other => {
                eprintln!("unknown experiment: {other}");
                continue;
            }
        };
        println!("\n=== {exp} ===\n{output}");
        eprintln!("# {exp} took {:.1}s", started.elapsed().as_secs_f64());
    }
}
