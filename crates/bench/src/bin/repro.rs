//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                 # everything (includes the JSON bench report)
//! repro table2 fig4 fig15   # selected experiments
//! repro bench               # only BENCH_recycler.json
//! ```
//!
//! Environment: `REPRO_SF` (TPC-H scale factor, default 0.01),
//! `REPRO_SKY` (sky objects, default 40000), `REPRO_SEED`,
//! `BENCH_OUT` (path of the JSON report, default `BENCH_recycler.json`),
//! `REPRO_C10K_IDLE` / `REPRO_C10K_HOT` (the `c10k` / `server_c10k`
//! idle-swarm and hot-client counts).

use rcy_bench::experiments::{self, ExpEnv};
use rcy_bench::report;

fn main() {
    let env = ExpEnv::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10", "fig12", "fig13", "table3",
            "fig14", "fig15", "ablation", "bench",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    eprintln!(
        "# repro: sf={} sky={} seed={} — experiments: {wanted:?}",
        env.sf, env.sky_objects, env.seed
    );
    for exp in wanted {
        let started = std::time::Instant::now();
        let output = match exp {
            "table2" => experiments::table2(&env),
            "fig4" => experiments::fig4(&env),
            "fig5" => experiments::fig5(&env),
            "fig6" => experiments::fig6(&env),
            "fig7" => experiments::fig7(&env),
            "fig8" | "fig9" | "fig8_9" => experiments::fig8_9(&env),
            "fig10" | "fig11" | "fig10_11" => experiments::fig10_11(&env),
            "fig12" => experiments::fig12_13(&env, 20),
            "fig13" => experiments::fig12_13(&env, 1),
            "table3" => experiments::table3(&env),
            "fig14" => experiments::fig14(&env),
            "fig15" => experiments::fig15(&env),
            "ablation" => experiments::ablation(&env),
            "c10k" => {
                // the reactor smoke: ≥1k idle connections must be flat.
                // Scaled by REPRO_C10K_IDLE / REPRO_C10K_HOT.
                let idle: usize = std::env::var("REPRO_C10K_IDLE")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(1200);
                let hot: usize = std::env::var("REPRO_C10K_HOT")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(4);
                let out = rcy_bench::server_c10k(idle, hot, 150);
                assert!(
                    out.live_connections >= idle as u64,
                    "idle swarm not fully connected: {out:?}"
                );
                assert!(
                    out.idle_memory_is_flat(64.0 * 1024.0),
                    "idle connections are not flat: {:.0} bytes each ({out:?})",
                    out.per_idle_conn_bytes
                );
                format!(
                    "idle={} hot={} queries={} nofile={}\n\
                     rss: {:.1} MiB -> {:.1} MiB ({:.0} bytes per idle conn)\n\
                     qps: reactor={:.0} baseline={:.0} (ratio {:.2}); \
                     one conn: sequential={:.0} pipelined={:.0}",
                    out.idle_connections,
                    out.hot_clients,
                    out.hot_queries,
                    out.nofile_limit,
                    out.rss_before_idle as f64 / (1 << 20) as f64,
                    out.rss_with_idle as f64 / (1 << 20) as f64,
                    out.per_idle_conn_bytes,
                    out.reactor_qps,
                    out.baseline_qps,
                    if out.baseline_qps > 0.0 {
                        out.reactor_qps / out.baseline_qps
                    } else {
                        0.0
                    },
                    out.sequential_qps,
                    out.pipelined_qps,
                )
            }
            "bench" => {
                let path =
                    std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_recycler.json".into());
                let doc = report::bench_report(&env);
                let text = format!("{doc}\n");
                match std::fs::write(&path, &text) {
                    Ok(()) => eprintln!("# bench report written to {path}"),
                    Err(e) => eprintln!("# bench report NOT written ({path}: {e})"),
                }
                text
            }
            other => {
                eprintln!("unknown experiment: {other}");
                continue;
            }
        };
        println!("\n=== {exp} ===\n{output}");
        eprintln!("# {exp} took {:.1}s", started.elapsed().as_secs_f64());
    }
}
