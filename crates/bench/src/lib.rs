//! # rcy-bench — the reproduction harness
//!
//! One runnable experiment per table/figure of the paper's evaluation
//! (§7 TPC-H, §8 SkyServer). The [`driver`] runs query batches against a
//! naive engine and recycler-equipped engines and collects per-query
//! series; [`experiments`] turns those series into the same rows the paper
//! reports; `src/bin/repro.rs` is the command-line entry point.
//!
//! ```text
//! cargo run -p rcy-bench --release --bin repro -- all
//! cargo run -p rcy-bench --release --bin repro -- table2 fig4 fig15
//! ```

pub mod c10k;
pub mod concurrent;
pub mod driver;
pub mod experiments;
pub mod opstate;
pub mod pressure;
pub mod report;
pub mod tables;
pub mod tiered;

pub use c10k::{server_c10k, C10kOutcome};
pub use concurrent::{
    partition_streams, pool_scaling, run_concurrent, run_concurrent_shared, server_mixed,
    update_mixed, ConcurrentOutcome, ScalePoint, ServerMixedOutcome, SessionOutcome,
    UpdateMixedOutcome,
};
pub use driver::{run_batch, BatchOutcome, BenchItem, QueryRun};
pub use opstate::{operator_reuse, OpStateRun, OperatorReuseOutcome};
pub use pressure::{eviction_pressure, EvictionPressureOutcome, PressurePoint};
pub use tables::TextTable;
pub use tiered::{tiered_lowmem, TieredLowmemOutcome, TieredRun};
