//! The `operator_reuse` scenario: operator-state recycling on vs off.
//!
//! The workload is shaped so plain result recycling cannot help — every
//! query's *answer* is new — while the expensive operator state behind
//! the answers repeats: a join whose probe window shifts every
//! invocation over a fixed build side, and a family of top-N templates
//! with different cut-offs over one bound column (they share a single
//! sorted run but never a result). With `recycle_operator_state(true)`
//! the recycler serves the hash table and the sorted run from the pool;
//! with it off, every query rebuilds them. The gap between the two runs
//! is the build time the artifact pool buys back.

use std::time::Duration;

use rbat::{Catalog, LogicalType, TableBuilder, Value};
use recycler::RecyclerConfig;
use rmal::{Program, ProgramBuilder, P};

use crate::driver::{run_recycled, BenchItem};

/// One side (knob on or off) of the comparison.
#[derive(Debug)]
pub struct OpStateRun {
    /// Whether operator-state recycling was enabled.
    pub operator_state: bool,
    /// Total wall time over the batch.
    pub elapsed: Duration,
    /// Exact-match result hits (sanity: the workload starves these).
    pub result_hits: u64,
    /// Artifact reuses served from the pool.
    pub artifact_hits: u64,
    /// Artifacts admitted into the pool.
    pub artifact_admissions: u64,
    /// Bytes held by resident artifacts at the end of the run.
    pub artifact_bytes: u64,
    /// Build time avoided through artifact reuse.
    pub artifact_saved: Duration,
    /// Per-query exports, for the cross-run identity check.
    pub exports: Vec<Vec<(String, Value)>>,
}

/// Outcome of [`operator_reuse`].
#[derive(Debug)]
pub struct OperatorReuseOutcome {
    /// Rows in the build-side table.
    pub rows: usize,
    /// Queries per side.
    pub queries: usize,
    /// The `recycle_operator_state(false)` side.
    pub without_state: OpStateRun,
    /// The `recycle_operator_state(true)` side.
    pub with_state: OpStateRun,
}

impl OperatorReuseOutcome {
    /// Fraction of artifact probes that hit: hits over hits+admissions
    /// (every miss that admits is a probe that found nothing).
    pub fn artifact_hit_ratio(&self) -> f64 {
        let h = self.with_state.artifact_hits;
        let total = h + self.with_state.artifact_admissions;
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    }

    /// The acceptance gate: operator-state recycling reused artifacts
    /// AND finished the batch faster than the same recycler without it.
    pub fn reuse_wins(&self) -> bool {
        self.with_state.artifact_hits > 0 && self.with_state.elapsed < self.without_state.elapsed
    }
}

fn catalog(rows: usize) -> Catalog {
    let mut cat = Catalog::new();
    let mut tb = TableBuilder::new("fact")
        .column("k", LogicalType::Int)
        .column("v", LogicalType::Int);
    for i in 0..rows as i64 {
        // k spreads over the probe-window domain; v is the payload the
        // top-N templates rank (pseudorandom so sorting does real work)
        tb.push_row(&[
            Value::Int((i * 37) % rows as i64),
            Value::Int((i * 2654435761) % 1_000_003),
        ]);
    }
    cat.add_table(tb.finish());
    cat
}

/// Probe window shifts per invocation (params), build side (`fact.v`)
/// repeats — the hash table is the recyclable half.
fn join_template() -> Program {
    let mut b = ProgramBuilder::new("op_join", 2);
    let k = b.bind("fact", "k");
    let v = b.bind("fact", "v");
    let sel = b.select_closed(k, P(0), P(1));
    let j = b.join(sel, v);
    let n = b.count(j);
    b.export("n", n);
    b.finish()
}

/// Top-N over `fact.v` with a per-template cut-off: the results differ
/// (no exact-match hit possible) but every template's `TopN` shares one
/// sorted run keyed on the bound column and direction.
fn topn_template(n: i64) -> Program {
    let mut b = ProgramBuilder::new(&format!("op_top{n}"), 0);
    let v = b.bind("fact", "v");
    let t = b.topn(v, n, false);
    let c = b.count(t);
    b.export("n", c);
    b.finish()
}

fn side(
    cat: Catalog,
    templates: &[Program],
    items: &[BenchItem],
    operator_state: bool,
) -> OpStateRun {
    let config = RecyclerConfig::default().recycle_operator_state(operator_state);
    let (outcome, db) = run_recycled(cat, templates, items, config, false);
    let stats = db.stats();
    OpStateRun {
        operator_state,
        elapsed: outcome.total,
        result_hits: stats.hits,
        artifact_hits: stats.artifact_hits,
        artifact_admissions: stats.artifact_admissions,
        artifact_bytes: stats.artifact_bytes,
        artifact_saved: stats.artifact_saved,
        exports: outcome.runs.into_iter().map(|r| r.exports).collect(),
    }
}

/// Run the scenario: `queries` invocations alternating shifting-window
/// joins with the top-N family, once per knob setting, over the same
/// catalog and item list.
pub fn operator_reuse(rows: usize, queries: usize) -> OperatorReuseOutcome {
    let cat = catalog(rows);
    let templates = vec![
        join_template(),
        topn_template(10),
        topn_template(25),
        topn_template(50),
    ];
    let mut items = Vec::with_capacity(queries);
    for i in 0..queries as i64 {
        if i % 3 == 2 {
            // rotate the top-N family: distinct results, one shared run
            items.push(BenchItem {
                query_idx: 1 + ((i / 3) % 3) as usize,
                label: 2,
                params: vec![],
            });
        } else {
            // shifting probe window: every answer is new, the build side
            // is not
            let lo = (i * 131) % (rows as i64 / 2);
            items.push(BenchItem {
                query_idx: 0,
                label: 1,
                params: vec![Value::Int(lo), Value::Int(lo + 40)],
            });
        }
    }
    let without_state = side(cat.clone(), &templates, &items, false);
    let with_state = side(cat, &templates, &items, true);
    assert_eq!(
        without_state.exports, with_state.exports,
        "operator-state recycling changed an answer"
    );
    OperatorReuseOutcome {
        rows,
        queries,
        without_state,
        with_state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_reuse_pays() {
        let out = operator_reuse(6_000, 24);
        assert!(
            out.with_state.artifact_hits > 0,
            "no artifact reuse: {out:?}"
        );
        assert!(
            out.with_state.artifact_admissions > 0,
            "no artifact admitted: {out:?}"
        );
        assert!(out.artifact_hit_ratio() > 0.0);
        assert!(
            out.with_state.artifact_saved > Duration::ZERO,
            "reuse saved no build time: {out:?}"
        );
        // answers identical on both sides is asserted inside the runner
    }
}
