//! Memory-pressure scenarios: `eviction_pressure` (eviction gather cost
//! vs pool size) and `background_eviction` (admission latency with the
//! background collector on vs off at the same cap).
//!
//! Before the incremental evictable-leaf index, every eviction round
//! re-scanned the whole pool to find the childless entries, so gather
//! work grew with *pool size* — O(pool) per round, O(pool²) across a
//! pressure spike. The index makes a round O(leaves). This scenario
//! builds pools with a **fixed leaf population but growing dependency
//! depth** (so total size grows while the leaf layer stays put), drives
//! eviction rounds through each, and reports the gather-visited counter
//! per round: the series must be flat across pool sizes for the O(leaves)
//! bound to hold — `BENCH_recycler.json` carries it so the trajectory
//! keeps proving it.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rbat::{Catalog, Value};
use recycler::{EntryId, EvictionPolicy, PoolEntry, RecyclePool, RecyclerConfig};
use recycling::DatabaseBuilder;
use rmal::Program;

/// One measured point: a pool of `chains × depth` entries with exactly
/// `chains` evictable leaves, put under entry pressure.
#[derive(Debug, Clone)]
pub struct PressurePoint {
    /// Dependency-chain depth (the pool-size multiplier).
    pub depth: usize,
    /// Total entries resident before eviction.
    pub pool_entries: usize,
    /// Leaves resident before eviction (constant across points).
    pub leaves: usize,
    /// Entries evicted by the pressure round.
    pub evicted: usize,
    /// Gather rounds the eviction performed.
    pub gather_rounds: u64,
    /// Entries visited across those rounds.
    pub gather_visited: u64,
    /// Visited entries per round — the number that must stay flat as
    /// `pool_entries` grows.
    pub visited_per_round: f64,
    /// Wall time of the eviction call.
    pub elapsed: Duration,
}

/// Outcome of [`eviction_pressure`]: one point per chain depth.
#[derive(Debug)]
pub struct EvictionPressureOutcome {
    /// Leaf population shared by every point.
    pub chains: usize,
    /// Victims requested from each point's eviction.
    pub evict_per_point: usize,
    /// The per-depth measurements.
    pub points: Vec<PressurePoint>,
}

impl EvictionPressureOutcome {
    /// Is gather work flat across pool sizes (max/min visited-per-round
    /// ratio ≤ `tolerance`)? With the leaf index the ratio is exactly 1.
    pub fn gather_is_size_independent(&self, tolerance: f64) -> bool {
        let per_round: Vec<f64> = self.points.iter().map(|p| p.visited_per_round).collect();
        let (min, max) = per_round
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        min > 0.0 && max / min <= tolerance
    }
}

fn chain_entry(pool: &RecyclePool, tag: i64, parent: Option<EntryId>) -> PoolEntry {
    let parents = parent.map(|p| vec![p]).unwrap_or_default();
    let mut e = PoolEntry::test_stub(pool.alloc_id(), tag, parents, 256);
    e.cpu = Duration::from_micros(10);
    e
}

/// Build a pool of `chains` parent→child chains of length `depth` (total
/// `chains × depth` entries, exactly `chains` leaves — the chain tails),
/// then evict `evict` entries and record the gather cost.
fn measure(chains: usize, depth: usize, evict: usize, policy: EvictionPolicy) -> PressurePoint {
    let pool = RecyclePool::with_shards(8);
    let mut tag = 0i64;
    for _ in 0..chains {
        let mut parent: Option<EntryId> = None;
        for _ in 0..depth {
            tag += 1;
            let admitted = pool.insert(chain_entry(&pool, tag, parent), None);
            parent = Some(admitted.id());
        }
    }
    let pool_entries = pool.len();
    let leaves = pool.leaf_index_size();
    let v0 = pool.eviction_gather_visited();
    let r0 = pool.eviction_gather_rounds();
    let started = Instant::now();
    let evicted = recycler::eviction::evict(
        &pool,
        policy,
        recycler::eviction::EvictTrigger::Entries(evict),
        tag as u64 + 1,
    );
    let elapsed = started.elapsed();
    let gather_rounds = pool.eviction_gather_rounds() - r0;
    let gather_visited = pool.eviction_gather_visited() - v0;
    pool.check_invariants().expect("pool stays exact");
    PressurePoint {
        depth,
        pool_entries,
        leaves,
        evicted: evicted.len(),
        gather_rounds,
        gather_visited,
        visited_per_round: gather_visited as f64 / gather_rounds.max(1) as f64,
        elapsed,
    }
}

/// The `eviction_pressure` scenario: sweep chain depths (pool sizes) at a
/// fixed leaf population, evicting the same victim count from each pool.
pub fn eviction_pressure(
    chains: usize,
    depths: &[usize],
    evict_per_point: usize,
) -> EvictionPressureOutcome {
    let points = depths
        .iter()
        .map(|&d| measure(chains, d, evict_per_point, EvictionPolicy::Lru))
        .collect();
    EvictionPressureOutcome {
        chains,
        evict_per_point,
        points,
    }
}

/// One side (collector on or off) of the [`background_eviction`]
/// comparison: admission latency percentiles over the steady phase plus
/// the eviction/collector counters at the end of the run.
#[derive(Debug, Clone)]
pub struct BackgroundRun {
    /// Was the background collector enabled for this run?
    pub collector: bool,
    /// Queries measured in the steady phase (after warm-up).
    pub queries: usize,
    /// Median query latency over the steady phase.
    pub p50: Duration,
    /// 99th-percentile query latency over the steady phase — the tail the
    /// collector exists to protect from inline eviction stalls.
    pub p99: Duration,
    /// Inline evictions incurred *during the steady phase* (lifetime count
    /// at the end minus the count at the warm-up snapshot). With the
    /// collector on this must be zero: admissions never evict on the query
    /// path once the water-mark regime is established.
    pub steady_inline_evictions: u64,
    /// Lifetime inline evictions (warm-up included).
    pub inline_evictions: u64,
    /// Lifetime background (collector) evictions.
    pub background_evictions: u64,
    /// Minor collector rounds run.
    pub minor_rounds: u64,
    /// Major collector rounds run.
    pub major_rounds: u64,
    /// Mean minor-round wall time, milliseconds.
    pub avg_minor_ms: f64,
    /// Mean major-round wall time, milliseconds.
    pub avg_major_ms: f64,
    /// Headroom under the cap at the end of the run.
    pub headroom_bytes: u64,
}

/// Outcome of [`background_eviction`]: the same workload, cap and water
/// marks, with the collector off then on.
#[derive(Debug)]
pub struct BackgroundEvictionOutcome {
    /// The shared memory cap (bytes) — the lowmem scenario uses 1 MiB.
    pub cap_bytes: usize,
    /// Warm-up queries excluded from the latency sample.
    pub warmup: usize,
    /// Run with inline eviction only (the seed behaviour).
    pub without_collector: BackgroundRun,
    /// Run with the collector draining toward the low-water mark.
    pub with_collector: BackgroundRun,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn drive_pressure(
    catalog: Catalog,
    template: &Program,
    items: &[Vec<Value>],
    warmup: usize,
    config: RecyclerConfig,
) -> BackgroundRun {
    let collector = config.background_collector;
    let db = DatabaseBuilder::new(catalog).recycler(config).build();
    let t = db.prepare(template.clone());
    let mut session = db.session();
    for params in &items[..warmup] {
        session.query(&t, params).expect("warmup query");
    }
    if collector {
        // let the collector finish absorbing the warm-up burst so the
        // steady phase starts inside the water-mark regime (the signal
        // fired during warm-up; IDLE_POLL bounds how long this takes)
        let settle = Instant::now();
        let high = (db.config().mem_limit.unwrap_or(usize::MAX) as f64
            * db.config().high_water_ratio) as usize;
        while db.pool().bytes() > high && settle.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let at_warmup = db.stats();
    let mut latencies: Vec<Duration> = Vec::with_capacity(items.len() - warmup);
    for params in &items[warmup..] {
        let started = Instant::now();
        session.query(&t, params).expect("steady query");
        latencies.push(started.elapsed());
    }
    let stats = db.stats();
    db.pool()
        .check_invariants()
        .expect("pool exact after pressure run");
    latencies.sort();
    BackgroundRun {
        collector,
        queries: latencies.len(),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        steady_inline_evictions: stats.inline_evictions - at_warmup.inline_evictions,
        inline_evictions: stats.inline_evictions,
        background_evictions: stats.background_evictions,
        minor_rounds: stats.minor_rounds,
        major_rounds: stats.major_rounds,
        avg_minor_ms: stats.avg_minor_ms,
        avg_major_ms: stats.avg_major_ms,
        headroom_bytes: stats.headroom_bytes,
    }
}

/// The `background_eviction` scenario: drive a stream of distinct-parameter
/// TPC-H Q6 instances (every instance admits fresh intermediates) through
/// a pool capped at `cap_bytes`, once with inline-only eviction and once
/// with the background collector (water marks 0.5/0.75), and compare
/// steady-phase admission latency and where the evictions ran.
pub fn background_eviction(
    sf: f64,
    queries: usize,
    warmup: usize,
    cap_bytes: usize,
) -> BackgroundEvictionOutcome {
    assert!(warmup < queries, "need a steady phase to measure");
    let catalog = tpch::generate(tpch::TpchScale::new(sf));
    let q = tpch::query(6);
    let mut rng = SmallRng::seed_from_u64(42);
    let items: Vec<Vec<Value>> = (0..queries).map(|_| (q.params)(&mut rng)).collect();
    let base = RecyclerConfig::default()
        .eviction(EvictionPolicy::Lru)
        .mem_limit(cap_bytes);
    let without = drive_pressure(catalog.clone(), &q.template, &items, warmup, base);
    let with = drive_pressure(
        catalog,
        &q.template,
        &items,
        warmup,
        base.collector(true).water_marks(0.5, 0.75),
    );
    BackgroundEvictionOutcome {
        cap_bytes,
        warmup,
        without_collector: without,
        with_collector: with,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_work_is_independent_of_pool_size() {
        // 16× pool growth at a constant leaf layer: visited-per-round must
        // not move at all
        let out = eviction_pressure(12, &[1, 4, 16], 6);
        assert_eq!(out.points.len(), 3);
        assert_eq!(out.points[0].pool_entries, 12);
        assert_eq!(out.points[2].pool_entries, 192);
        for p in &out.points {
            assert_eq!(p.leaves, 12, "leaf layer constant by construction: {p:?}");
            assert_eq!(p.evicted, 6);
        }
        assert!(
            out.gather_is_size_independent(1.0),
            "gather cost grew with pool size: {:?}",
            out.points
        );
    }

    #[test]
    fn collector_keeps_admissions_off_the_eviction_path() {
        // same 1 MiB cap both sides; the workload genuinely overflows it
        // (the collector-off run must evict), and with the collector on no
        // steady-phase admission may evict inline
        let out = background_eviction(0.002, 60, 15, 1 << 20);
        assert_eq!(out.without_collector.queries, 45);
        assert!(
            out.without_collector.inline_evictions > 0,
            "cap never bound — the scenario exerts no pressure: {:?}",
            out.without_collector
        );
        assert_eq!(
            out.with_collector.steady_inline_evictions, 0,
            "an admission evicted inline despite the collector: {:?}",
            out.with_collector
        );
        assert!(
            out.with_collector.background_evictions > 0,
            "collector never drained anything: {:?}",
            out.with_collector
        );
        assert!(
            out.with_collector.minor_rounds + out.with_collector.major_rounds > 0,
            "collector ran no rounds: {:?}",
            out.with_collector
        );
    }

    #[test]
    fn deep_pressure_peels_layers_in_leaf_sized_rounds() {
        // evicting past the first layer forces re-gathers; each must still
        // be bounded by the *current* leaf count, never the pool size
        let out = eviction_pressure(8, &[8], 24);
        let p = &out.points[0];
        assert_eq!(p.pool_entries, 64);
        assert_eq!(p.evicted, 24);
        assert!(
            p.gather_visited <= p.gather_rounds * 8,
            "a round visited more than the leaf layer: {p:?}"
        );
    }
}
