//! The `eviction_pressure` scenario: eviction gather cost vs pool size.
//!
//! Before the incremental evictable-leaf index, every eviction round
//! re-scanned the whole pool to find the childless entries, so gather
//! work grew with *pool size* — O(pool) per round, O(pool²) across a
//! pressure spike. The index makes a round O(leaves). This scenario
//! builds pools with a **fixed leaf population but growing dependency
//! depth** (so total size grows while the leaf layer stays put), drives
//! eviction rounds through each, and reports the gather-visited counter
//! per round: the series must be flat across pool sizes for the O(leaves)
//! bound to hold — `BENCH_recycler.json` carries it so the trajectory
//! keeps proving it.

use std::time::{Duration, Instant};

use recycler::{EntryId, EvictionPolicy, PoolEntry, RecyclePool};

/// One measured point: a pool of `chains × depth` entries with exactly
/// `chains` evictable leaves, put under entry pressure.
#[derive(Debug, Clone)]
pub struct PressurePoint {
    /// Dependency-chain depth (the pool-size multiplier).
    pub depth: usize,
    /// Total entries resident before eviction.
    pub pool_entries: usize,
    /// Leaves resident before eviction (constant across points).
    pub leaves: usize,
    /// Entries evicted by the pressure round.
    pub evicted: usize,
    /// Gather rounds the eviction performed.
    pub gather_rounds: u64,
    /// Entries visited across those rounds.
    pub gather_visited: u64,
    /// Visited entries per round — the number that must stay flat as
    /// `pool_entries` grows.
    pub visited_per_round: f64,
    /// Wall time of the eviction call.
    pub elapsed: Duration,
}

/// Outcome of [`eviction_pressure`]: one point per chain depth.
#[derive(Debug)]
pub struct EvictionPressureOutcome {
    /// Leaf population shared by every point.
    pub chains: usize,
    /// Victims requested from each point's eviction.
    pub evict_per_point: usize,
    /// The per-depth measurements.
    pub points: Vec<PressurePoint>,
}

impl EvictionPressureOutcome {
    /// Is gather work flat across pool sizes (max/min visited-per-round
    /// ratio ≤ `tolerance`)? With the leaf index the ratio is exactly 1.
    pub fn gather_is_size_independent(&self, tolerance: f64) -> bool {
        let per_round: Vec<f64> = self.points.iter().map(|p| p.visited_per_round).collect();
        let (min, max) = per_round
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        min > 0.0 && max / min <= tolerance
    }
}

fn chain_entry(pool: &RecyclePool, tag: i64, parent: Option<EntryId>) -> PoolEntry {
    let parents = parent.map(|p| vec![p]).unwrap_or_default();
    let mut e = PoolEntry::test_stub(pool.alloc_id(), tag, parents, 256);
    e.cpu = Duration::from_micros(10);
    e
}

/// Build a pool of `chains` parent→child chains of length `depth` (total
/// `chains × depth` entries, exactly `chains` leaves — the chain tails),
/// then evict `evict` entries and record the gather cost.
fn measure(chains: usize, depth: usize, evict: usize, policy: EvictionPolicy) -> PressurePoint {
    let pool = RecyclePool::with_shards(8);
    let mut tag = 0i64;
    for _ in 0..chains {
        let mut parent: Option<EntryId> = None;
        for _ in 0..depth {
            tag += 1;
            let admitted = pool.insert(chain_entry(&pool, tag, parent), None);
            parent = Some(admitted.id());
        }
    }
    let pool_entries = pool.len();
    let leaves = pool.leaf_index_size();
    let v0 = pool.eviction_gather_visited();
    let r0 = pool.eviction_gather_rounds();
    let started = Instant::now();
    let evicted = recycler::eviction::evict(
        &pool,
        policy,
        recycler::eviction::EvictTrigger::Entries(evict),
        tag as u64 + 1,
    );
    let elapsed = started.elapsed();
    let gather_rounds = pool.eviction_gather_rounds() - r0;
    let gather_visited = pool.eviction_gather_visited() - v0;
    pool.check_invariants().expect("pool stays exact");
    PressurePoint {
        depth,
        pool_entries,
        leaves,
        evicted: evicted.len(),
        gather_rounds,
        gather_visited,
        visited_per_round: gather_visited as f64 / gather_rounds.max(1) as f64,
        elapsed,
    }
}

/// The `eviction_pressure` scenario: sweep chain depths (pool sizes) at a
/// fixed leaf population, evicting the same victim count from each pool.
pub fn eviction_pressure(
    chains: usize,
    depths: &[usize],
    evict_per_point: usize,
) -> EvictionPressureOutcome {
    let points = depths
        .iter()
        .map(|&d| measure(chains, d, evict_per_point, EvictionPolicy::Lru))
        .collect();
    EvictionPressureOutcome {
        chains,
        evict_per_point,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_work_is_independent_of_pool_size() {
        // 16× pool growth at a constant leaf layer: visited-per-round must
        // not move at all
        let out = eviction_pressure(12, &[1, 4, 16], 6);
        assert_eq!(out.points.len(), 3);
        assert_eq!(out.points[0].pool_entries, 12);
        assert_eq!(out.points[2].pool_entries, 192);
        for p in &out.points {
            assert_eq!(p.leaves, 12, "leaf layer constant by construction: {p:?}");
            assert_eq!(p.evicted, 6);
        }
        assert!(
            out.gather_is_size_independent(1.0),
            "gather cost grew with pool size: {:?}",
            out.points
        );
    }

    #[test]
    fn deep_pressure_peels_layers_in_leaf_sized_rounds() {
        // evicting past the first layer forces re-gathers; each must still
        // be bounded by the *current* leaf count, never the pool size
        let out = eviction_pressure(8, &[8], 24);
        let p = &out.points[0];
        assert_eq!(p.pool_entries, 64);
        assert_eq!(p.evicted, 24);
        assert!(
            p.gather_visited <= p.gather_rounds * 8,
            "a round visited more than the leaf layer: {p:?}"
        );
    }
}
